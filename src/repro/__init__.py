"""APRES reproduction: adaptive prefetching and scheduling on GPUs.

Reimplementation of Oh et al., *APRES: Improving Cache Efficiency by
Exploiting Load Characteristics on GPUs* (ISCA 2016): a cycle-level GPU
SM simulator, the LAWS scheduler and SAP prefetcher, the baseline
schedulers/prefetchers the paper compares against, the 15-benchmark
synthetic workload suite, and an experiment harness regenerating every
table and figure of the evaluation.

Quick start::

    from repro import run, speedup
    result = run("BFS", "apres", scale=0.3)
    print(result.ipc, speedup("BFS", "apres", scale=0.3))
"""

from repro.analysis import run_lint
from repro.config import APRESConfig, CacheConfig, DRAMConfig, GPUConfig
from repro.core import APRESPair, LAWSScheduler, SAPPrefetcher, build_apres, hardware_cost
from repro.errors import (
    CheckpointError,
    ConfigError,
    InvariantError,
    LintError,
    ReproError,
    SimulationError,
    WatchdogTimeout,
    WorkloadError,
)
from repro.experiments import figures
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.experiments.runner import RunResult, run, speedup
from repro.experiments.sweep import ResultsStore, SweepPoint, run_sweep, sweep_points
from repro.integrity import load_checkpoint, save_checkpoint
from repro.isa import KernelSpec
from repro.sm import GPUSimulator, SimulationResult, simulate
from repro.telemetry import STALL_CAUSES, TelemetryHub
from repro.trace import TraceRecorder, load_trace, replay_trace, save_trace
from repro.workloads import SUITE, WorkloadSpec, build_kernel, workload

__version__ = "1.0.0"

__all__ = [
    "APRESConfig",
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "APRESPair",
    "LAWSScheduler",
    "SAPPrefetcher",
    "build_apres",
    "hardware_cost",
    "CheckpointError",
    "ConfigError",
    "InvariantError",
    "LintError",
    "ReproError",
    "run_lint",
    "SimulationError",
    "WatchdogTimeout",
    "WorkloadError",
    "ResultsStore",
    "SweepPoint",
    "run_sweep",
    "sweep_points",
    "load_checkpoint",
    "save_checkpoint",
    "figures",
    "CONFIGS",
    "experiment_gpu_config",
    "RunResult",
    "run",
    "speedup",
    "KernelSpec",
    "GPUSimulator",
    "SimulationResult",
    "simulate",
    "STALL_CAUSES",
    "TelemetryHub",
    "TraceRecorder",
    "load_trace",
    "replay_trace",
    "save_trace",
    "SUITE",
    "WorkloadSpec",
    "build_kernel",
    "workload",
    "__version__",
]
