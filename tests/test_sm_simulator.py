"""Whole-simulator integration: completion, conservation, determinism."""

import dataclasses

import pytest

from conftest import broadcast_kernel, mixed_kernel, streaming_kernel
from repro.errors import SimulationError
from repro.prefetch.none import NullPrefetcher
from repro.prefetch.stride import STRPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import simulate


def lrr_engine():
    return LRRScheduler(), NullPrefetcher()


class TestCompletion:
    def test_all_instructions_execute(self, tiny_config):
        kernel = streaming_kernel(iterations=5)
        result = simulate(kernel, tiny_config, lrr_engine)
        expected = kernel.instructions_per_warp * tiny_config.max_warps_per_sm
        assert result.stats.instructions == expected

    def test_multi_sm_counts_scale(self, two_sm_config):
        kernel = streaming_kernel(iterations=5)
        result = simulate(kernel, two_sm_config, lrr_engine)
        expected = kernel.instructions_per_warp * 8 * 2
        assert result.stats.instructions == expected

    def test_waves_multiply_work(self, tiny_config):
        k1 = streaming_kernel(iterations=4, waves=1)
        k2 = streaming_kernel(iterations=4, waves=2)
        r1 = simulate(k1, tiny_config, lrr_engine)
        r2 = simulate(k2, tiny_config, lrr_engine)
        assert r2.stats.instructions == 2 * r1.stats.instructions

    def test_cycles_positive_and_bounded(self, tiny_config):
        result = simulate(broadcast_kernel(5), tiny_config, lrr_engine)
        assert 0 < result.cycles < tiny_config.max_cycles

    def test_max_cycles_guard(self, tiny_config):
        cfg = dataclasses.replace(tiny_config, max_cycles=10)
        with pytest.raises(SimulationError, match="exceeded"):
            simulate(streaming_kernel(iterations=50), cfg, lrr_engine)


class TestConservation:
    def test_accesses_equal_hits_plus_misses(self, tiny_config):
        result = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        l1 = result.stats.l1
        assert l1.accesses == l1.hits + l1.misses

    def test_misses_fully_classified(self, tiny_config):
        result = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        l1 = result.stats.l1
        assert l1.misses == l1.cold_misses + l1.capacity_conflict_misses

    def test_hit_split_covers_hits(self, tiny_config):
        result = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        l1 = result.stats.l1
        # The very first access has no predecessor, hence the <= 1 slack.
        assert 0 <= l1.hits - (l1.hit_after_hit + l1.hit_after_miss) <= 1

    def test_instruction_mix(self, tiny_config):
        result = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        s = result.stats
        assert s.instructions == s.alu_instructions + s.load_instructions + s.store_instructions

    def test_broadcast_mostly_hits(self, tiny_config):
        result = simulate(broadcast_kernel(20), tiny_config, lrr_engine)
        assert result.stats.l1.hit_rate > 0.9

    def test_streaming_never_hits(self, tiny_config):
        result = simulate(streaming_kernel(10), tiny_config, lrr_engine)
        l1 = result.stats.l1
        assert l1.hits == 0
        assert l1.capacity_conflict_misses == 0  # every line is fresh

    def test_l2_traffic_accounts_for_l1_misses(self, tiny_config):
        result = simulate(streaming_kernel(10), tiny_config, lrr_engine)
        m = result.stats.memory
        # One L2 access and one L2->L1 line per demand fill.
        assert m.l2_accesses == result.stats.l1.misses
        assert m.bytes_l2_to_l1 == result.stats.l1.misses * 128


class TestDeterminism:
    def test_identical_runs(self, tiny_config):
        a = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        b = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        assert a.cycles == b.cycles
        assert a.stats.l1.__dict__ == b.stats.l1.__dict__

    def test_prefetcher_runs_deterministic(self, tiny_config):
        def engine():
            return LRRScheduler(), STRPrefetcher()

        a = simulate(mixed_kernel(8), tiny_config, engine)
        b = simulate(mixed_kernel(8), tiny_config, engine)
        assert a.cycles == b.cycles


class TestLatencyMetric:
    def test_latency_counts_every_demand(self, tiny_config):
        result = simulate(mixed_kernel(8), tiny_config, lrr_engine)
        m = result.stats.memory
        assert m.demand_latency_count == result.stats.l1.accesses

    def test_hit_latency_floor(self, tiny_config):
        result = simulate(broadcast_kernel(20), tiny_config, lrr_engine)
        avg = result.stats.memory.avg_demand_latency
        assert avg >= tiny_config.l1.hit_latency

    def test_miss_latency_above_dram_floor(self, tiny_config):
        result = simulate(streaming_kernel(10), tiny_config, lrr_engine)
        assert result.stats.memory.avg_demand_latency >= tiny_config.dram.latency
