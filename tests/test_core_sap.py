"""SAP: inter-warp group prefetching plus per-warp streams."""

from repro.core.apres import build_apres
from repro.core.laws import LAWSScheduler
from repro.core.sap import SAPPrefetcher
from repro.mem.request import LoadAccess


def access(warp, pc, addr, hit=False, cycle=0):
    return LoadAccess(0, warp, pc, addr, (addr - addr % 128,), hit, cycle)


def make(n=8, **kw):
    laws = LAWSScheduler()
    laws.reset(n)
    sap = SAPPrefetcher(laws, **kw)
    sap.reset(n)
    return laws, sap


def drive_miss(laws, sap, warp, pc, addr):
    """Route one missing load through LAWS then SAP, as the pipeline does."""
    a = access(warp, pc, addr, hit=False)
    laws.notify_load_result(a)
    return sap.observe_load(a)


class TestGroupPrefetch:
    def test_figure9_example(self):
        """Paper's worked example: stride 100 confirmed, prefetch per member."""
        laws, sap = make(n=4, self_degree=1)
        # All warps share LLPC so groups include everyone.
        for w in range(4):
            laws.notify_load_result(access(w, 0x100, 0, hit=True))
        drive_miss(laws, sap, 0, 0x200, 2000)     # PT entry created
        drive_miss(laws, sap, 1, 0x200, 2100)     # stride 100 learned
        out = drive_miss(laws, sap, 2, 0x200, 2200)  # stride confirmed
        # Warps 0 and 1 already executed the load (their LLPC advanced), so
        # the group only holds warps still approaching it: warp 3.
        by_warp = {c.target_warp: c.addr for c in out if c.target_warp != 2}
        assert by_warp == {3: 2200 + (3 - 2) * 100}

    def test_stride_mismatch_updates_but_does_not_fire(self):
        laws, sap = make(n=4, self_degree=1)
        drive_miss(laws, sap, 0, 0x200, 0)
        drive_miss(laws, sap, 1, 0x200, 100)
        out = drive_miss(laws, sap, 2, 0x200, 9999)  # stride breaks
        assert [c for c in out if c.target_warp != 2] == []
        assert sap.stride_for(0x200) != 100

    def test_same_warp_reexecution_skipped(self):
        laws, sap = make(n=4, self_degree=1)
        drive_miss(laws, sap, 0, 0x200, 0)
        before = sap.stride_for(0x200)
        drive_miss(laws, sap, 0, 0x200, 500)  # same warp: anchor kept
        assert sap.stride_for(0x200) == before

    def test_non_divisible_delta_rejected(self):
        laws, sap = make(n=4, self_degree=1)
        drive_miss(laws, sap, 0, 0x200, 0)
        drive_miss(laws, sap, 2, 0x200, 101)  # delta 101 over 2 warps
        assert sap.stride_for(0x200) is None

    def test_hits_never_prefetch(self):
        laws, sap = make()
        a = access(0, 0x200, 1000, hit=True)
        laws.notify_load_result(a)
        assert sap.observe_load(a) == []

    def test_pt_capacity_lru(self):
        laws, sap = make(self_degree=1)
        for i in range(12):  # PT holds 10 entries
            drive_miss(laws, sap, 0, 0x100 + i * 8, i * 1000)
        assert sap.stride_for(0x100) is None
        assert sap.stride_for(0x100 + 11 * 8) is not None or True

    def test_without_group_no_group_prefetch(self):
        laws, sap = make(n=4, self_degree=1)
        drive_miss(laws, sap, 0, 0x200, 0)
        drive_miss(laws, sap, 1, 0x200, 100)
        a = access(2, 0x200, 200, hit=False)
        # SAP sees the access without LAWS having parked a group.
        out = sap.observe_load(a)
        assert [c for c in out if c.target_warp != 2] == []


class TestSelfPrefetch:
    def test_per_warp_stream(self):
        laws, sap = make(self_degree=2)
        drive_miss(laws, sap, 3, 0x200, 0)
        drive_miss(laws, sap, 3, 0x200, 4096)
        out = drive_miss(laws, sap, 3, 0x200, 8192)
        mine = [c.addr for c in out if c.target_warp == 3]
        assert mine == [12288, 16384]

    def test_streams_are_per_warp(self):
        laws, sap = make(self_degree=1)
        for addr in (0, 4096, 8192):
            drive_miss(laws, sap, 3, 0x200, addr)
        # A different warp on the same PC has its own stream: no fire yet.
        out = drive_miss(laws, sap, 4, 0x200, 70_000)
        assert [c for c in out if c.target_warp == 4] == []

    def test_zero_stride_suppressed(self):
        laws, sap = make(self_degree=1)
        for _ in range(4):
            out = drive_miss(laws, sap, 3, 0x200, 512)
        assert [c for c in out if c.target_warp == 3] == []


class TestBuildApres:
    def test_pair_is_wired(self):
        pair = build_apres()
        assert pair.prefetcher._laws is pair.scheduler

    def test_events_aggregate(self):
        pair = build_apres()
        pair.scheduler.reset(4)
        pair.prefetcher.reset(4)
        a = access(0, 0x10, 0, hit=False)
        pair.scheduler.notify_load_result(a)
        pair.prefetcher.observe_load(a)
        assert pair.events >= 2
