"""Run-wide metrics registry and the crash flight recorder.

Unit contracts: declared-name enforcement (the runtime twin of simlint
SL011), typed instruments, deterministic JSON + Prometheus export, the
bounded flight ring, and dump schema/placement rules.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.flight import (
    FlightRecorder,
    recorder,
    validate_flight_dump,
)
from repro.telemetry.metrics import (
    METRICS,
    MetricsRegistry,
    get_registry,
    validate_metrics_export,
    write_metrics,
)


class TestMetricsRegistry:
    def test_undeclared_name_is_rejected_with_a_pointer_to_sl011(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError, match="SL011"):
            registry.counter("shard.windows.unheard_of")

    def test_type_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError, match="declared as a gauge"):
            registry.counter("pool.workers.alive")

    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("shard.windows.run")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_instruments_are_memoised_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("shard.windows.run") is \
            registry.counter("shard.windows.run")

    def test_histogram_summarises_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("shard.window.span_cycles")
        for value in (10, 2, 7):
            hist.observe(value)
        assert (hist.count, hist.sum, hist.min, hist.max) == (3, 19, 2, 10)

    def test_every_declared_metric_has_a_known_type(self):
        assert all(t in ("counter", "gauge", "histogram")
                   for t, _help in METRICS.values())

    def test_get_registry_is_process_wide(self):
        assert get_registry() is get_registry()


class TestMetricsExport:
    def _touched(self):
        registry = MetricsRegistry()
        registry.counter("shard.windows.run").inc(5)
        registry.gauge("pool.workers.alive").set(2)
        registry.histogram("shard.window.span_cycles").observe(64)
        return registry

    def test_json_export_validates_and_is_deterministic(self, tmp_path):
        registry = self._touched()
        out = tmp_path / "metrics.json"
        prom_path = write_metrics(str(out), registry)
        assert prom_path == str(out) + ".prom"
        payload = json.loads(out.read_text())
        assert validate_metrics_export(payload) == []
        assert payload["schema"] == "repro-telemetry-metrics"
        assert payload["metrics"]["shard.windows.run"]["value"] == 5
        assert payload["metrics"]["shard.window.span_cycles"]["count"] == 1
        first = out.read_bytes()
        write_metrics(str(out), registry)
        assert out.read_bytes() == first  # atomic rewrite, same bytes

    def test_prometheus_textfile_flattens_names(self, tmp_path):
        registry = self._touched()
        out = tmp_path / "metrics.json"
        prom = (tmp_path / "metrics.json.prom")
        write_metrics(str(out), registry)
        text = prom.read_text()
        assert "# TYPE shard_windows_run counter" in text
        assert "shard_windows_run 5" in text
        assert "# TYPE pool_workers_alive gauge" in text
        assert "shard_window_span_cycles_count 1" in text
        assert "shard_window_span_cycles_sum 64" in text

    def test_validator_flags_undeclared_and_mistyped_entries(self):
        payload = {
            "schema": "repro-telemetry-metrics",
            "schema_version": 1,
            "metrics": {
                "not.a.metric": {"type": "counter", "value": 1},
                "pool.workers.alive": {"type": "counter", "value": 1},
            },
        }
        problems = validate_metrics_export(payload)
        assert len(problems) == 2


class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.record("tick", i=i)
        events = ring.snapshot()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert [e["seq"] for e in events] == [6, 7, 8, 9]
        assert ring.events_recorded == 10

    def test_kind_is_positional_only(self):
        # Crash paths attach arbitrary fields; none may collide with the
        # event-kind parameter (regression: cause fields named "kind").
        ring = FlightRecorder(capacity=4)
        ring.record("pool.quarantine", kind="worker-crash", cause="x")
        assert ring.snapshot()[0]["kind"] == "worker-crash"

    def test_dump_is_skipped_without_a_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_DUMP_DIR", raising=False)
        ring = FlightRecorder(capacity=4)
        ring.record("tick")
        assert ring.dump("nowhere-to-go") is None
        assert ring.dumps_written == 0

    def test_dump_writes_schema_valid_json(self, tmp_path):
        ring = FlightRecorder(capacity=8)
        ring.record("barrier", window=3)
        ring.record("worker_death", cause="crash")
        path = ring.dump("unit test!", directory=str(tmp_path),
                         details={"index": 7})
        assert path is not None and path.endswith(".json")
        assert "flight-unit-test-" in path  # unsafe chars sanitised
        payload = json.loads(open(path, encoding="utf-8").read())
        assert validate_flight_dump(payload) == []
        assert payload["reason"] == "unit test!"
        assert payload["details"] == {"index": 7}
        assert [e["kind"] for e in payload["events"]] == \
            ["barrier", "worker_death"]

    def test_dump_respects_env_dir_and_counts_into_metrics(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DUMP_DIR", str(tmp_path / "env-dumps"))
        counter = get_registry().counter("flight.dumps.written")
        before = counter.value
        ring = FlightRecorder(capacity=2)
        ring.record("tick")
        path = ring.dump("env-routed")
        assert path is not None
        assert (tmp_path / "env-dumps") in list((tmp_path).iterdir())
        assert counter.value == before + 1

    def test_validator_catches_seq_regressions(self):
        payload = {
            "schema": "repro-flight-recorder",
            "schema_version": 1,
            "events": [{"seq": 1, "kind": "a"}, {"seq": 0, "kind": "b"}],
        }
        assert validate_flight_dump(payload) == ["event 1 seq not increasing"]

    def test_process_wide_recorder_is_shared(self):
        assert recorder() is recorder()
