"""Experiment harness: configs, runner memoisation, figure producers.

Figure producers run at a very small scale here — these are wiring tests,
not reproduction runs (the benchmarks regenerate the real numbers).
"""

import pytest

from repro.core.laws import LAWSScheduler
from repro.core.sap import SAPPrefetcher
from repro.experiments.configs import CONFIGS, EngineSpec, experiment_gpu_config
from repro.experiments.report import format_table
from repro.experiments.runner import clear_cache, run, speedup
from repro.experiments import figures

SCALE = 0.05  # a handful of iterations per warp


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestConfigs:
    def test_registry_contains_paper_configs(self):
        for name in ("base", "ccws", "laws", "ccws+str", "laws+str", "apres",
                     "gto+sld", "mascar+str", "pa+sld"):
            assert name in CONFIGS

    def test_base_is_lrr_no_prefetch(self):
        sched, pf = CONFIGS["base"].build()
        assert sched.name == "lrr"
        assert pf.name == "none"

    def test_apres_builds_coupled_pair(self):
        sched, pf = CONFIGS["apres"].build()
        assert isinstance(sched, LAWSScheduler)
        assert isinstance(pf, SAPPrefetcher)
        assert pf._laws is sched

    def test_laws_str_builds_uncoupled(self):
        sched, pf = CONFIGS["laws+str"].build()
        assert isinstance(sched, LAWSScheduler)
        assert pf.name == "str"

    def test_each_build_is_fresh(self):
        a = CONFIGS["ccws"].build()[0]
        b = CONFIGS["ccws"].build()[0]
        assert a is not b

    def test_engine_spec_names(self):
        assert EngineSpec("ccws", "str").name == "ccws+str"
        assert EngineSpec("ccws").name == "ccws"
        assert EngineSpec("apres").name == "apres"

    def test_scaled_config(self):
        cfg = experiment_gpu_config(num_sms=2)
        assert cfg.num_sms == 2
        assert cfg.dram.service_cycles > cfg.scaled(15).dram.service_cycles


class TestRunner:
    def test_run_returns_result(self):
        r = run("KM", "base", scale=SCALE)
        assert r.workload == "KM"
        assert r.cycles > 0
        assert r.energy.total > 0

    def test_memoised(self):
        a = run("KM", "base", scale=SCALE)
        b = run("KM", "base", scale=SCALE)
        assert a is b

    def test_distinct_configs_not_shared(self):
        a = run("KM", "base", scale=SCALE)
        b = run("KM", "laws", scale=SCALE)
        assert a is not b

    def test_unknown_config(self):
        with pytest.raises(ValueError, match="unknown config"):
            run("KM", "nope", scale=SCALE)

    def test_speedup_of_baseline_is_one(self):
        assert speedup("KM", "base", scale=SCALE) == 1.0


class TestFigures:
    APPS = ["KM", "PA"]

    def test_geomean(self):
        assert figures.geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert figures.geomean([]) == 0.0

    def test_table1_rows(self):
        rows = figures.table1(apps=["KM"], scale=SCALE)
        assert 0xE8 in {r.pc for r in rows["KM"]}

    def test_table2(self):
        assert figures.table2().total_bytes == 724

    def test_figure2_shapes(self):
        data = figures.figure2(apps=self.APPS, scale=SCALE)
        for app in self.APPS:
            assert set(data[app]) == {"B", "C"}
            b = data[app]["B"]
            assert b.speedup == 1.0
            assert abs(b.cold_ratio + b.capacity_conflict_ratio - b.miss_rate) < 1e-9

    def test_figure2_large_cache_kills_capacity_misses(self):
        data = figures.figure2(apps=["KM"], scale=0.2)
        assert data["KM"]["C"].capacity_conflict_ratio < data["KM"]["B"].capacity_conflict_ratio

    def test_figure10_has_gmean(self):
        data = figures.figure10(apps=self.APPS, scale=SCALE)
        for config in figures.FIG10_CONFIGS:
            assert "GMEAN" in data[config]
            assert data[config]["KM"] > 0

    def test_figure11_stacks_to_one(self):
        data = figures.figure11(apps=["KM"], scale=SCALE)
        for row in data["KM"].values():
            total = row.hit_ratio + row.miss_ratio
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_figure12_configs(self):
        data = figures.figure12(apps=["KM"], scale=SCALE)
        assert set(data) == {"ccws+str", "apres"}

    def test_figure13_baseline_normalised(self):
        data = figures.figure13(apps=["KM"], scale=SCALE)
        for config, per_app in data.items():
            assert per_app["KM"] > 0

    def test_figure15_energy(self):
        data = figures.figure15(apps=["KM"], scale=SCALE)
        assert 0 < data["apres"]["KM"] < 10

    def test_normalised_metric_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown metric"):
            figures.normalised_metric("bogus", ["apres"], apps=["KM"], scale=SCALE)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xyz" in lines[4]  # title, header, rule, row 1, row 2

    def test_floats_formatted(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text
