"""SM pipeline mechanics: issue, LSU feedback, replay, prefetch wiring."""


from conftest import make_config
from repro.isa.address import BroadcastAddress, StridedAddress
from repro.isa.instructions import alu, load, store
from repro.isa.program import KernelSpec
from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import GPUSimulator, simulate

GB = 1 << 30


class RecordingScheduler(LRRScheduler):
    """LRR that logs every LSU feedback event."""

    def __init__(self):
        super().__init__()
        self.load_results: list[LoadAccess] = []
        self.prefetch_targets: list[int] = []
        self.mem_completes: list[int] = []

    def notify_load_result(self, access):
        self.load_results.append(access)

    def notify_prefetch_targets(self, targets):
        self.prefetch_targets.extend(targets)

    def notify_mem_complete(self, warp_id, cycle):
        self.mem_completes.append(warp_id)


class OneShotPrefetcher(Prefetcher):
    """Prefetches a fixed target once, for wiring tests."""

    name = "oneshot"

    def __init__(self, addr, target):
        super().__init__()
        self._addr = addr
        self._target = target
        self._fired = False

    def observe_load(self, access):
        if self._fired:
            return []
        self._fired = True
        return [PrefetchCandidate(self._addr, target_warp=self._target)]


def one_warp_config():
    return make_config(max_warps=1)


class TestLSUFeedback:
    def test_one_feedback_per_load(self):
        cfg = make_config(max_warps=2)
        gen = BroadcastAddress(GB, region_bytes=1024)
        kernel = KernelSpec("k", [load(0x10, gen), alu(0x18)], 3)
        sched = RecordingScheduler()
        sim = GPUSimulator(kernel, cfg, lambda: (sched, NullPrefetcher()))
        sim.run()
        assert len(sched.load_results) == 2 * 3  # warps x iterations

    def test_feedback_carries_primary_outcome(self):
        cfg = one_warp_config()
        gen = BroadcastAddress(GB, region_bytes=1024)
        kernel = KernelSpec("k", [load(0x10, gen)], 3)
        sched = RecordingScheduler()
        GPUSimulator(kernel, cfg, lambda: (sched, NullPrefetcher())).run()
        hits = [a.primary_hit for a in sched.load_results]
        assert hits == [False, True, True]

    def test_feedback_has_pc_and_primary_addr(self):
        cfg = one_warp_config()
        gen = StridedAddress(GB, warp_stride=0, iter_stride=256)
        kernel = KernelSpec("k", [load(0x44, gen)], 2)
        sched = RecordingScheduler()
        GPUSimulator(kernel, cfg, lambda: (sched, NullPrefetcher())).run()
        assert [a.pc for a in sched.load_results] == [0x44, 0x44]
        assert [a.primary_addr for a in sched.load_results] == [GB, GB + 256]

    def test_mem_complete_notification(self):
        cfg = one_warp_config()
        gen = BroadcastAddress(GB, region_bytes=1024)
        kernel = KernelSpec("k", [load(0x10, gen)], 2)
        sched = RecordingScheduler()
        GPUSimulator(kernel, cfg, lambda: (sched, NullPrefetcher())).run()
        assert sched.mem_completes == [0, 0]


class TestPrefetchWiring:
    def test_issued_prefetch_reports_target(self):
        cfg = one_warp_config()
        gen = StridedAddress(GB, warp_stride=0, iter_stride=4096)
        kernel = KernelSpec("k", [load(0x10, gen)], 3)
        sched = RecordingScheduler()
        pf = OneShotPrefetcher(GB + (1 << 20), target=0)
        GPUSimulator(kernel, cfg, lambda: (sched, pf)).run()
        assert sched.prefetch_targets == [0]

    def test_dropped_prefetch_does_not_report_target(self):
        cfg = one_warp_config()
        gen = StridedAddress(GB, warp_stride=0, iter_stride=4096)
        kernel = KernelSpec("k", [load(0x10, gen)], 3)
        sched = RecordingScheduler()
        # Prefetch the line the demand just fetched: dropped as in-flight.
        pf = OneShotPrefetcher(GB, target=0)
        sim = GPUSimulator(kernel, cfg, lambda: (sched, pf))
        result = sim.run()
        assert sched.prefetch_targets == []
        assert result.stats.l1.prefetch_dropped == 1

    def test_prefetch_lines_are_aligned(self):
        cfg = one_warp_config()
        gen = StridedAddress(GB, warp_stride=0, iter_stride=4096)
        kernel = KernelSpec("k", [load(0x10, gen)], 2)
        pf = OneShotPrefetcher(GB + 4096 + 77, target=None)
        result = GPUSimulator(kernel, cfg, lambda: (LRRScheduler(), pf)).run()
        # Second iteration's demand hits/merges the aligned prefetch.
        l1 = result.stats.l1
        assert l1.prefetch_issued == 1
        assert l1.prefetch_useful + l1.prefetch_demand_merged == 1


class TestStores:
    def test_store_does_not_block_warp(self):
        cfg = one_warp_config()
        st = StridedAddress(2 * GB, warp_stride=128, iter_stride=2048)
        kernel = KernelSpec("k", [alu(0x8), store(0x10, st)], 4)
        result = simulate(kernel, cfg, lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.store_instructions == 4
        assert result.stats.memory.bytes_stored == 4 * 128

    def test_store_traffic_in_total(self):
        cfg = one_warp_config()
        st = StridedAddress(2 * GB, warp_stride=128, iter_stride=2048)
        kernel = KernelSpec("k", [store(0x10, st), alu(0x18)], 2)
        result = simulate(kernel, cfg, lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.memory.total_traffic_bytes >= 2 * 128


class TestDivergentLoads:
    def test_multi_line_load_blocks_until_last_fill(self):
        cfg = one_warp_config()
        # Lanes spread over 4 distinct lines.
        gen = StridedAddress(GB, warp_stride=0, iter_stride=8192, element_bytes=16)
        kernel = KernelSpec("k", [load(0x10, gen)], 2)
        result = simulate(kernel, cfg, lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.l1.accesses == 2 * 4

    def test_mshr_pressure_causes_replay(self):
        cfg = make_config(max_warps=8, mshrs=2)
        gen = StridedAddress(GB, warp_stride=32768, iter_stride=8192, element_bytes=16)
        kernel = KernelSpec("k", [load(0x10, gen)], 3)
        result = simulate(kernel, cfg, lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.l1.reservation_fails > 0
        # Despite replays, every access eventually commits.
        assert result.stats.l1.accesses == 8 * 3 * 4
