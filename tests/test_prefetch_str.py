"""STR per-PC stride prefetcher."""

import pytest

from repro.mem.request import LoadAccess
from repro.prefetch.stride import STRPrefetcher


def access(pc, addr, warp=0, hit=False, cycle=0):
    return LoadAccess(0, warp, pc, addr, (addr - addr % 128,), hit, cycle)


class TestStrideDetection:
    def test_needs_confirmation_before_prefetching(self):
        p = STRPrefetcher(degree=1)
        assert p.observe_load(access(0x10, 0)) == []
        assert p.observe_load(access(0x10, 512)) == []  # stride learned
        out = p.observe_load(access(0x10, 1024))        # stride confirmed
        assert [c.addr for c in out] == [1536]

    def test_degree(self):
        p = STRPrefetcher(degree=3)
        for addr in (0, 512, 1024):
            out = p.observe_load(access(0x10, addr))
        assert [c.addr for c in out] == [1536, 2048, 2560]

    def test_stride_change_suppresses(self):
        p = STRPrefetcher(degree=1)
        for addr in (0, 512, 1024):
            p.observe_load(access(0x10, addr))
        assert p.observe_load(access(0x10, 9000)) == []

    def test_readapts_after_change(self):
        p = STRPrefetcher(degree=1)
        for addr in (0, 512, 1024, 9000, 9100):
            out = p.observe_load(access(0x10, addr))
        out = p.observe_load(access(0x10, 9200))
        assert [c.addr for c in out] == [9300]

    def test_zero_stride_never_fires(self):
        p = STRPrefetcher(degree=1)
        for _ in range(5):
            out = p.observe_load(access(0x10, 4096))
        assert out == []

    def test_negative_stride(self):
        p = STRPrefetcher(degree=1)
        for addr in (10000, 8000, 6000):
            out = p.observe_load(access(0x10, addr))
        assert [c.addr for c in out] == [4000]

    def test_pcs_tracked_independently(self):
        p = STRPrefetcher(degree=1)
        for addr in (0, 512):
            p.observe_load(access(0x10, addr))
        for addr in (0, 99):
            p.observe_load(access(0x20, addr))
        out = p.observe_load(access(0x10, 1024))
        assert [c.addr for c in out] == [1536]
        assert p.stride_for(0x20) == 99

    def test_table_capacity_lru(self):
        p = STRPrefetcher(table_entries=2)
        p.observe_load(access(0x10, 0))
        p.observe_load(access(0x20, 0))
        p.observe_load(access(0x30, 0))  # evicts 0x10
        assert p.stride_for(0x10) is None

    def test_reset_clears(self):
        p = STRPrefetcher()
        p.observe_load(access(0x10, 0))
        p.observe_load(access(0x10, 512))
        p.reset(8)
        assert p.stride_for(0x10) is None

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            STRPrefetcher(degree=0)


class TestInterWarpUnderRoundRobin:
    def test_detects_warp_stride(self):
        """Consecutive executions by successive warps expose the inter-warp
        stride — the Section III-C scenario."""
        p = STRPrefetcher(degree=2)
        out = []
        for w in range(4):
            out = p.observe_load(access(0x10, w * 4352, warp=w))
        assert [c.addr for c in out] == [4 * 4352, 5 * 4352]
