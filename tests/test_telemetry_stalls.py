"""Stall attribution must partition every SM cycle — exactly.

The acceptance property (ISSUE 3): per-cause stall cycles + issue cycles
== total SM cycles, reconciled against ``SimStats``, on at least three
workloads × two schedulers. We run three kernels × three engine configs
(LRR baseline, CCWS throttling, full APRES) and require the identity to
hold to the cycle, not approximately.
"""

from __future__ import annotations

import pickle

import pytest

from conftest import broadcast_kernel, make_config, mixed_kernel, streaming_kernel
from repro.errors import InvariantError
from repro.experiments.configs import CONFIGS
from repro.sm.simulator import GPUSimulator, simulate
from repro.telemetry import STALL_CAUSES, StallEngine, TelemetryHub

NUM_SMS = 2

KERNELS = {
    "stream": lambda: streaming_kernel(iterations=12),
    "bcast": lambda: broadcast_kernel(iterations=12),
    "mixed": lambda: mixed_kernel(iterations=8),
}

ENGINES = ("base", "ccws", "apres")


def run_with_hub(kernel_name: str, config_name: str, **hub_kwargs):
    hub = TelemetryHub(**hub_kwargs)
    cfg = make_config(num_sms=NUM_SMS)
    result = simulate(
        KERNELS[kernel_name](), cfg, CONFIGS[config_name].build, telemetry=hub
    )
    return hub, result


class TestReconciliationProperty:
    @pytest.mark.parametrize("config_name", ENGINES)
    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_partition_is_exact(self, kernel_name, config_name):
        hub, result = run_with_hub(kernel_name, config_name)
        report = hub.reconcile(result.stats)  # raises InvariantError on drift
        stats = result.stats
        assert report["issue_cycles"] == stats.instructions
        assert sum(report["by_cause"].values()) == stats.idle_cycles
        assert (
            report["issue_cycles"] + report["stall_cycles"]
            == stats.cycles * NUM_SMS
        )
        assert set(report["by_cause"]) == set(STALL_CAUSES)
        assert all(v >= 0 for v in report["by_cause"].values())

    @pytest.mark.parametrize("config_name", ENGINES)
    def test_per_sm_rows_sum_to_totals(self, config_name):
        hub, result = run_with_hub("mixed", config_name)
        report = hub.reconcile(result.stats)
        assert sum(row["issue_cycles"] for row in report["per_sm"]) == (
            report["issue_cycles"]
        )
        for cause in STALL_CAUSES:
            assert sum(row["stalls"][cause] for row in report["per_sm"]) == (
                report["by_cause"][cause]
            )

    def test_streaming_kernel_charges_memory(self):
        # An all-miss streaming kernel must attribute most of its stall
        # time to memory (in-flight fills or DRAM queuing), by a wide
        # margin — if it lands on scoreboard/no_warp the classifier broke.
        hub, result = run_with_hub("stream", "base")
        by_cause = hub.reconcile(result.stats)["by_cause"]
        memory = by_cause["l1_pending"] + by_cause["dram_queue"]
        assert memory > result.stats.idle_cycles // 2

    def test_reconcile_raises_on_drift(self):
        hub, result = run_with_hub("bcast", "base")
        result.stats.instructions += 1  # simulate a missed issue hook
        with pytest.raises(InvariantError, match="stall attribution"):
            hub.reconcile(result.stats)

    def test_report_schema(self):
        hub, result = run_with_hub("bcast", "base")
        report = hub.stall_report(result.stats)
        assert report["schema"] == "repro-telemetry-stalls"
        assert report["schema_version"] == 1
        assert report["causes"] == STALL_CAUSES
        rec = report["reconciliation"]
        assert rec["issue_matches_instructions"]
        assert rec["stalls_match_idle"]
        assert rec["partition_complete"]


class TestHubLifecycle:
    def test_hub_binds_exactly_once(self):
        hub, _result = run_with_hub("bcast", "base")
        with pytest.raises(ValueError, match="exactly one simulator"):
            simulate(
                broadcast_kernel(iterations=2),
                make_config(),
                CONFIGS["base"].build,
                telemetry=hub,
            )

    def test_skip_requires_prior_charge_default(self):
        # A StallEngine that skips before any tick charges no_warp — the
        # documented safe default for the impossible-in-practice case.
        class _DRAMStub:
            def busy_partitions(self, now):
                return 0

        engine = StallEngine(1, _DRAMStub())
        engine.on_skip(5)
        assert engine.by_cause()["no_warp"] == 5

    def test_snapshot_resume_keeps_reconciling(self):
        # Pickle the simulator mid-run with a live hub, resume the copy,
        # and the restored run's attribution must still reconcile exactly.
        hub = TelemetryHub()
        cfg = make_config(num_sms=NUM_SMS)
        sim = GPUSimulator(
            streaming_kernel(iterations=10), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        assert not sim.step_until(300)
        resumed = pickle.loads(pickle.dumps(sim))
        while not resumed.step_until(1 << 30):
            pass
        result = resumed.result()
        report = resumed.telemetry.reconcile(result.stats)
        assert (
            report["issue_cycles"] + report["stall_cycles"]
            == result.stats.cycles * NUM_SMS
        )


class TestPrefetchConservation:
    def _run(self, tamper=None):
        hub = TelemetryHub()
        cfg = make_config(num_sms=NUM_SMS)
        sim = GPUSimulator(
            streaming_kernel(iterations=12), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        sim.run()
        if tamper is not None:
            tamper(sim.stats.l1)
        sim.subsystem.check_invariants(sim.stats.cycles)
        return sim

    def test_guard_holds_on_real_run(self):
        sim = self._run()
        assert sim.stats.l1.prefetch_issued > 0  # the guard checked something

    def test_guard_trips_on_lost_prefetch(self):
        with pytest.raises(InvariantError, match="prefetch conservation"):
            self._run(tamper=lambda l1: setattr(
                l1, "prefetch_issued", l1.prefetch_issued + 1
            ))

    def test_guard_trips_on_overcounted_usefulness(self):
        with pytest.raises(InvariantError, match="prefetch"):
            self._run(tamper=lambda l1: setattr(
                l1, "prefetch_useful", l1.prefetch_fills + 1
            ))
