"""Event fast-forwarding must not change observable timing."""


from conftest import make_config, mixed_kernel
from repro.errors import SimulationError
from repro.isa.address import StridedAddress
from repro.isa.instructions import alu, load
from repro.isa.program import KernelSpec
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import GPUSimulator, simulate

import pytest

GB = 1 << 30


def lrr():
    return LRRScheduler(), NullPrefetcher()


class TestFastForward:
    def test_idle_cycles_accounted_when_skipping(self, tiny_config):
        # One warp, one long-latency load: almost the entire run is skip.
        cfg = make_config(max_warps=1)
        gen = StridedAddress(GB, warp_stride=0, iter_stride=4096)
        kernel = KernelSpec("k", [load(0x10, gen)], 3)
        result = simulate(kernel, cfg, lrr)
        s = result.stats
        # Total issue opportunities = cycles; issued = instructions.
        assert s.idle_cycles + s.instructions == pytest.approx(s.cycles, abs=2)

    def test_alu_only_kernel_never_needs_events(self, tiny_config):
        cfg = make_config(max_warps=2)
        kernel = KernelSpec("k", [alu(0x8), alu(0x10)], 5)
        result = simulate(kernel, cfg, lrr)
        assert result.stats.l1.accesses == 0
        assert result.cycles > 0

    def test_deadlock_detection_on_impossible_state(self, tiny_config):
        """A warp stuck waiting forever (simulated by a scheduler that
        never issues) must raise rather than loop."""

        class NeverIssue(LRRScheduler):
            def select(self, candidates, cycle):
                return None

        cfg = make_config(max_warps=1)
        kernel = KernelSpec("k", [alu(0x8)], 1)
        sim = GPUSimulator(kernel, cfg, lambda: (NeverIssue(), NullPrefetcher()))
        with pytest.raises(SimulationError):
            sim.run()

    def test_skip_equivalence_with_dense_alu_gaps(self, tiny_config):
        """Dependent-issue gaps are skipped; results must match a config
        that can never skip (issue_latency=1 changes timing, so instead we
        verify determinism and exact instruction accounting)."""
        cfg = make_config(max_warps=3)
        kernel = mixed_kernel(5)
        a = simulate(kernel, cfg, lrr)
        b = simulate(kernel, cfg, lrr)
        assert a.cycles == b.cycles
        assert a.stats.idle_cycles == b.stats.idle_cycles
