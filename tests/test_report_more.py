"""Additional formatting and figure-producer edge cases."""

import pytest

from repro.experiments.report import format_table
from repro.experiments import figures


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule

    def test_wide_cell_stretches_column(self):
        text = format_table(["x"], [["very-long-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("very-long-cell-content")

    def test_no_title_has_no_blank_first_line(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")

    def test_mixed_types(self):
        text = format_table(["a"], [[None], [True], [1.5]])
        assert "None" in text
        assert "True" in text
        assert "1.500" in text


class TestGeomean:
    def test_single(self):
        assert figures.geomean([2.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert figures.geomean([4.0, 0.0, -3.0]) == pytest.approx(4.0)

    def test_scale_invariance(self):
        a = figures.geomean([1.0, 2.0, 4.0])
        b = figures.geomean([2.0, 4.0, 8.0])
        assert b == pytest.approx(2 * a)


class TestFigureConstants:
    def test_fig10_configs_are_registered(self):
        from repro.experiments.configs import CONFIGS

        for name in figures.FIG10_CONFIGS + figures.FIG3_CONFIGS + figures.FIG4_CONFIGS:
            assert name in CONFIGS, name

    def test_fig11_labels(self):
        assert list(figures.FIG11_CONFIGS) == ["B", "C", "L", "S", "A"]

    def test_app_axes(self):
        assert len(figures.ALL_APPS) == 15
        assert len(figures.MEMORY_APPS) == 10
