"""Property-based tests over core invariants with hypothesis."""


from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import make_config
from repro.config import CacheConfig
from repro.core.laws import LAWSScheduler
from repro.isa.address import BroadcastAddress, IrregularAddress, StridedAddress
from repro.isa.instructions import alu, load
from repro.isa.program import KernelSpec
from repro.mem.cache import AccessOutcome, L1Cache
from repro.mem.request import LoadAccess
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import simulate
from repro.stats.counters import CacheStats

GB = 1 << 30


# ----------------------------------------------------------------------
# L1 cache invariants under random access/fill interleavings
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=120,
    )
)
def test_cache_invariants_hold_under_any_interleaving(ops):
    """Random demands/prefetches with immediate or deferred fills keep the
    counter algebra intact and never leak MSHRs."""
    cfg = CacheConfig(size_bytes=1024, associativity=2, num_mshrs=3, mshr_merge_limit=2)
    stats = CacheStats()
    pending = []
    l1 = L1Cache(cfg, stats, lambda line, now, pf: now + 10)
    now = 0
    for tag, warp, is_prefetch in ops:
        line = tag * 128
        now += 1
        if is_prefetch:
            if l1.prefetch(line, now):
                pending.append(line)
        else:
            outcome, _ = l1.access(line, warp, now)
            if outcome is AccessOutcome.MISS:
                pending.append(line)
            elif outcome is AccessOutcome.STALL and pending:
                l1.fill(pending.pop(0), now)
        if len(pending) == cfg.num_mshrs:
            l1.fill(pending.pop(0), now)
    for line in pending:
        l1.fill(line, now + 1)

    assert stats.accesses == stats.hits + stats.misses
    assert stats.misses == stats.cold_misses + stats.capacity_conflict_misses
    assert stats.hit_after_hit + stats.hit_after_miss <= stats.hits
    assert stats.prefetch_fills <= stats.prefetch_issued
    assert stats.prefetch_early_evicted <= stats.prefetch_fills
    assert 0.0 <= stats.early_eviction_ratio <= 1.0


# ----------------------------------------------------------------------
# LAWS queue is always a permutation of the warps
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.sampled_from([0x10, 0x20, 0x30]), st.booleans()),
        max_size=80,
    )
)
def test_laws_queue_is_permutation(events):
    laws = LAWSScheduler()
    laws.reset(8)
    for warp, pc, hit in events:
        access = LoadAccess(0, warp, pc, warp * 100, (warp * 100,), hit, 0)
        laws.notify_load_result(access)
        if not hit:
            laws.take_pending_group(access)
        laws.notify_prefetch_targets([warp])
    assert sorted(laws.queue) == list(range(8))


# ----------------------------------------------------------------------
# End-to-end simulation invariants over random tiny kernels
# ----------------------------------------------------------------------


@st.composite
def tiny_kernels(draw):
    n_loads = draw(st.integers(1, 3))
    body = []
    for i in range(n_loads):
        kind = draw(st.sampled_from(["bcast", "strided", "irregular"]))
        base = (i + 1) * GB
        if kind == "bcast":
            gen = BroadcastAddress(base, region_bytes=512)
        elif kind == "strided":
            gen = StridedAddress(
                base,
                warp_stride=draw(st.sampled_from([0, 128, 4096])),
                iter_stride=draw(st.sampled_from([0, 128, 2048])),
                footprint_bytes=1 << 22,
            )
        else:
            gen = IrregularAddress(
                base,
                footprint_bytes=1 << 20,
                hot_bytes=1024,
                hot_fraction=draw(st.floats(0.0, 1.0)),
                lines_per_warp=draw(st.integers(1, 2)),
                seed=draw(st.integers(0, 5)),
            )
        body.append(load(0x10 + 8 * i, gen))
        body.append(alu(0x100 + 8 * i))
    iterations = draw(st.integers(1, 4))
    return KernelSpec("prop", body, iterations)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tiny_kernels())
def test_simulation_invariants_for_random_kernels(kernel):
    cfg = make_config(max_warps=4)
    result = simulate(kernel, cfg, lambda: (LRRScheduler(), NullPrefetcher()))
    s = result.stats
    assert s.instructions == kernel.instructions_per_warp * 4
    assert s.l1.accesses == s.l1.hits + s.l1.misses
    assert s.l1.misses == s.l1.cold_misses + s.l1.capacity_conflict_misses
    assert s.memory.demand_latency_count == s.l1.accesses
    fills_started = s.l1.misses - s.l1.mshr_demand_merges + s.l1.prefetch_issued
    assert s.memory.l2_accesses == fills_started
    assert s.cycles > 0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tiny_kernels(), st.sampled_from(["lrr", "gto", "ccws", "mascar", "pa", "twolevel"]))
def test_every_scheduler_completes_every_kernel(kernel, sched_name):
    from repro.sched.registry import make_scheduler

    cfg = make_config(max_warps=4)
    result = simulate(kernel, cfg, lambda: (make_scheduler(sched_name), NullPrefetcher()))
    assert result.stats.instructions == kernel.instructions_per_warp * 4
