"""Distributed telemetry: sharded runs reproduce serial telemetry exactly.

The acceptance bar extends the shard engine's bit-identity contract to
the observability layer: under ``--shards N --epoch-cycles 1`` the
merged stall attribution, interval records, event stream and Chrome
trace must be byte-identical to a serial run with the same hub
configuration, and the PR-3 reconciliation invariants must hold in the
*merged* hub. Alongside that sit the run-wide metrics registry, the
crash flight recorder, and the heartbeat plumbing under the process
shard backend.
"""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from conftest import make_config
from repro.experiments import runner
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.experiments.parallel import HeartbeatRelay, ProgressWriter, QueueHeartbeatSink
from repro.experiments.sweep import ResultsStore, run_sweep, sweep_points
from repro.resilience import faults
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.resilience.supervisor import SupervisorConfig
from repro.shard import ShardPlan, shard_execute
from repro.shard.telemetry import ShardTelemetryCoordinator
from repro.sm.simulator import simulate
from repro.telemetry import TelemetryHub
from repro.telemetry.export import InMemorySink, validate_chrome_trace
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

SCALE = 0.05

#: Interval window small enough that a scale-0.05 run flushes several
#: windows (the merge must be exact mid-run, not only at finish).
WINDOW = 500


@pytest.fixture(autouse=True)
def fresh_run_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _instrumented_hub():
    hub = TelemetryHub(window=WINDOW, trace=True)
    sink = InMemorySink()
    hub.add_event_sink(sink)
    hub.add_interval_sink(sink)
    return hub, sink


def _serial_run(workload_abbr, config_name, num_sms):
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=num_sms)
    kernel = build_kernel(workload(workload_abbr), SCALE)
    hub, sink = _instrumented_hub()
    result = simulate(kernel, cfg, CONFIGS[config_name].build, telemetry=hub)
    return hub, sink, result


def _sharded_run(workload_abbr, config_name, num_sms, shards,
                 backend="inproc", epoch_cycles=1):
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=num_sms)
    kernel = build_kernel(workload(workload_abbr), SCALE)
    hub, sink = _instrumented_hub()
    plan = ShardPlan(num_shards=shards, epoch_cycles=epoch_cycles,
                     backend=backend)
    result, info = shard_execute(kernel, cfg, CONFIGS[config_name].build,
                                 plan, telemetry=hub)
    return hub, sink, result, info


def _fingerprint(hub, sink, result):
    """Every byte the telemetry layer produces, JSON-canonicalised."""
    return {
        "stalls": json.dumps(hub.reconcile(result.stats), sort_keys=True),
        "intervals": json.dumps(sink.intervals, sort_keys=True),
        "events": [(type(e).kind, e.as_dict()) for e in sink.events],
        "trace": json.dumps(hub.trace.build(), sort_keys=True),
        "final_cycle": sink.final_cycle,
    }


class TestLockstepByteIdentity:
    @pytest.mark.parametrize("workload_abbr,config_name", [
        ("BFS", "apres"), ("KM", "base"), ("KM", "laws+sld"),
    ])
    def test_two_shard_merge_matches_serial(self, workload_abbr, config_name):
        s_hub, s_sink, s_res = _serial_run(workload_abbr, config_name, 2)
        h_hub, h_sink, h_res, info = _sharded_run(
            workload_abbr, config_name, 2, shards=2)
        assert info["bit_exact"] is True
        assert h_res.stats.as_dict() == s_res.stats.as_dict()
        serial = _fingerprint(s_hub, s_sink, s_res)
        sharded = _fingerprint(h_hub, h_sink, h_res)
        for channel in serial:
            assert sharded[channel] == serial[channel], channel

    def test_uneven_split_merge_matches_serial(self):
        # 3 shards over 4 SMs (groups of 2/1/1): the merge order must not
        # depend on how SMs are grouped into lanes.
        s_hub, s_sink, s_res = _serial_run("BFS", "apres", 4)
        h_hub, h_sink, h_res, _ = _sharded_run("BFS", "apres", 4, shards=3)
        assert _fingerprint(h_hub, h_sink, h_res) == \
            _fingerprint(s_hub, s_sink, s_res)

    def test_process_backend_merge_matches_serial(self):
        s_hub, s_sink, s_res = _serial_run("KM", "apres", 2)
        h_hub, h_sink, h_res, info = _sharded_run(
            "KM", "apres", 2, shards=2, backend="process")
        assert info["attempts"] == 1 and not info["degraded"]
        assert _fingerprint(h_hub, h_sink, h_res) == \
            _fingerprint(s_hub, s_sink, s_res)

    def test_merged_trace_validates(self):
        h_hub, _, h_res, _ = _sharded_run("KM", "apres", 2, shards=2)
        assert validate_chrome_trace(h_hub.trace.build()) == []

    def test_merge_counts_events_into_the_metrics_registry(self):
        from repro.telemetry.metrics import get_registry

        counter = get_registry().counter("telemetry.events.merged")
        before = counter.value
        _, sink, _, _ = _sharded_run("KM", "base", 2, shards=2)
        assert counter.value - before == len(sink.events)


class TestRelaxedEpochs:
    def test_relaxed_merge_still_reconciles_exactly(self):
        # E=64 is not byte-identical to serial, but the exclusive-cause
        # identities (issue==instructions, stalls==idle, partition==
        # cycles*SMs) must still hold exactly in the merged hub —
        # hub.reconcile raises InvariantError otherwise.
        hub, sink, result, info = _sharded_run(
            "BFS", "apres", 2, shards=2, epoch_cycles=64)
        assert info["bit_exact"] is False
        report = hub.reconcile(result.stats)
        assert report["reconciliation"]["issue_matches_instructions"]
        assert sink.intervals  # interval channel survives relaxed mode
        assert validate_chrome_trace(hub.trace.build()) == []


class TestUnsortedMergeIsCaught:
    def test_tampered_merge_order_diverges_from_serial(self, monkeypatch):
        """The CI byte-compare would catch a wrong merge: deliberately
        feeding lane payloads in reversed order must change the event
        stream (if it didn't, the identity tests above would be
        vacuous)."""
        original = ShardTelemetryCoordinator._feed_events_exact

        def tampered(self, payloads, captured):
            return original(self, list(reversed(list(payloads))), captured)

        _, s_sink, _ = _serial_run("KM", "apres", 2)
        monkeypatch.setattr(
            ShardTelemetryCoordinator, "_feed_events_exact", tampered)
        _, h_sink, _, _ = _sharded_run("KM", "apres", 2, shards=2)
        serial_events = [(type(e).kind, e.as_dict()) for e in s_sink.events]
        sharded_events = [(type(e).kind, e.as_dict()) for e in h_sink.events]
        assert sharded_events != serial_events


class TestRunnerAndSweepAcceptShardTelemetry:
    def test_runner_accepts_hub_with_shard_plan(self):
        hub, _ = _instrumented_hub()
        sharded = runner.run("KM", "apres", scale=SCALE, telemetry=hub,
                             shard_plan=ShardPlan(2, 1))
        serial_hub, _ = _instrumented_hub()
        runner.clear_cache()
        serial = runner.run("KM", "apres", scale=SCALE, telemetry=serial_hub,
                            shard_plan=None)
        assert sharded.cycles == serial.cycles
        assert hub.stall_summary(sharded.sim.stats) == \
            serial_hub.stall_summary(serial.sim.stats)

    def test_telemetry_sweep_on_process_shards_is_byte_identical(self, tmp_path):
        cfg = make_config(num_sms=2)
        points = sweep_points(["KM"], ("base",), (SCALE,))
        serial = tmp_path / "serial.jsonl"
        sharded = tmp_path / "sharded.jsonl"
        run_sweep(points, str(serial), gpu_config=cfg, telemetry=True)
        runner.clear_cache()
        run_sweep(points, str(sharded), gpu_config=cfg, telemetry=True,
                  shard_plan=ShardPlan(2, 1, backend="process"))
        assert sharded.read_bytes() == serial.read_bytes()
        record = next(iter(ResultsStore(str(sharded)).load().values()))
        assert record["stalls"]["top_cause"]


class TestHeartbeatsUnderProcessShards:
    def test_relay_renders_merged_intervals_through_progress_writer(self):
        # The process backend's barrier replies carry the lane telemetry;
        # the merged hub flushes interval records parent-side, which is
        # where a pool worker's QueueHeartbeatSink would sit. Wire the
        # real relay + writer and require one rendered line per interval.
        stream = io.StringIO()
        relay = HeartbeatRelay(ProgressWriter(stream))
        try:
            cfg = dataclasses.replace(experiment_gpu_config(), num_sms=2)
            kernel = build_kernel(workload("KM"), SCALE)
            hub = TelemetryHub(window=WINDOW)
            tap = InMemorySink()
            hub.add_interval_sink(tap)
            hub.add_interval_sink(
                QueueHeartbeatSink(relay.queue, "KM|apres|0.05"))
            plan = ShardPlan(num_shards=2, epoch_cycles=1, backend="process")
            shard_execute(kernel, cfg, CONFIGS["apres"].build, plan,
                          telemetry=hub)
        finally:
            relay.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == len(tap.intervals) > 0
        for line, interval in zip(lines, tap.intervals):
            assert line.startswith("[telemetry] KM|apres|0.05: cycle ")
            assert f"cycle {interval['cycle_end']:,}" in line
            assert f"IPC {interval['ipc']:.3f}" in line


class TestFlightDumpOnWorkerCrash:
    def test_poisoned_point_leaves_a_flight_dump_beside_quarantine(
            self, tmp_path, monkeypatch):
        dump_dir = tmp_path / "dumps"
        monkeypatch.setenv("REPRO_DUMP_DIR", str(dump_dir))
        faults.arm(FaultPlan(events=[
            FaultEvent("worker.point", 0, "crash", every_attempt=True)]))
        out = tmp_path / "poisoned.jsonl"
        supervisor = SupervisorConfig(
            deadline_s=2.0, heartbeat_interval_s=0.1, backoff_base_s=0.05,
            backoff_cap_s=0.2, max_attempts=2)
        summary = run_sweep(
            sweep_points(["KM"], ("base",), (SCALE,)), str(out),
            gpu_config=make_config(), jobs=2, supervisor=supervisor)
        assert summary.quarantined_keys  # the quarantine record exists...
        crash_dumps = sorted(dump_dir.glob("flight-pool-worker-crash-*.json"))
        quarantine_dumps = sorted(
            dump_dir.glob("flight-pool-quarantine-*.json"))
        assert crash_dumps and quarantine_dumps  # ...and so do the dumps.

        from repro.telemetry.flight import validate_flight_dump

        payload = json.loads(quarantine_dumps[0].read_text())
        assert validate_flight_dump(payload) == []
        assert payload["details"]["kind"] == "worker-crash"
        kinds = [event["kind"] for event in payload["events"]]
        assert "pool.worker_death" in kinds
        assert "pool.quarantine" in kinds
