"""Integrity layer: invariant guards and the watchdog.

Deliberately-broken engines and corrupted machine state must trip
``InvariantError`` / ``WatchdogTimeout`` with structured diagnostics, and
enabling the guards must never change simulated timing.
"""

import dataclasses
import json

import pytest

from conftest import broadcast_kernel, make_config, mixed_kernel, streaming_kernel
from repro.errors import InvariantError, SimulationError, WatchdogTimeout
from repro.integrity.invariants import InvariantChecker
from repro.integrity.watchdog import Watchdog
from repro.mem.mshr import MSHREntry
from repro.prefetch.none import NullPrefetcher
from repro.sched.base import WarpScheduler
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import GPUSimulator


def lrr_engine():
    return LRRScheduler(), NullPrefetcher()


class StuckScheduler(WarpScheduler):
    """A broken engine that refuses to issue anything: no warp ever retires."""

    name = "stuck"

    def select(self, candidates, cycle):
        return None


class _Requeue:
    """A buggy fill path that perpetually re-defers itself: event churn,
    clock progress, zero forward progress — textbook livelock."""

    def __init__(self, events):
        self.events = events

    def __call__(self, when):
        self.events.schedule(when + 1, self)


def guarded_config(**overrides):
    base = dict(integrity_interval=1, watchdog_cycles=0)
    base.update(overrides)
    return dataclasses.replace(make_config(), **base)


class TestInvariantGuards:
    def test_clean_run_passes_all_checks(self):
        sim = GPUSimulator(mixed_kernel(8), guarded_config(), lrr_engine)
        result = sim.run()
        assert result.stats.integrity_checks > 0

    def test_guards_are_timing_neutral(self):
        kernel = mixed_kernel(8)
        plain = GPUSimulator(kernel, make_config(), lrr_engine).run()
        guarded = GPUSimulator(
            kernel, guarded_config(watchdog_cycles=100_000), lrr_engine
        ).run()
        a, b = plain.stats.as_dict(), guarded.stats.as_dict()
        differing = {k for k in a if a[k] != b[k]}
        assert differing == {"integrity_checks"}

    def test_leaked_mshr_entry_trips_invariant(self):
        sim = GPUSimulator(streaming_kernel(6), guarded_config(), lrr_engine)
        sim.step_until(50)
        mshrs = sim.subsystem.l1s[0].mshrs
        # Inject an entry behind the allocation counter's back: a leak.
        mshrs._entries[0xDEAD00] = MSHREntry(0xDEAD00, 0, prefetch_only=False)
        with pytest.raises(InvariantError, match="MSHR"):
            sim.run()

    def test_negative_outstanding_trips_invariant(self):
        sim = GPUSimulator(broadcast_kernel(20), guarded_config(), lrr_engine)
        # A warp with nothing in flight cannot reach the LSU's own underflow
        # assertion — only the conservation sweep can see this corruption.
        victim = None
        while victim is None:
            assert not sim.step_until(sim.current_cycle + 25), "kernel finished"
            victim = next(
                (w for w in sim.sms[0].warps
                 if not w.finished and w.outstanding == 0),
                None,
            )
        victim.outstanding = -1
        with pytest.raises(InvariantError, match="negative"):
            sim.run()

    def test_request_conservation_trips_invariant(self):
        sim = GPUSimulator(streaming_kernel(6), guarded_config(), lrr_engine)
        sim.step_until(50)
        sim.sms[0].mem_requests_issued += 3  # phantom issues
        with pytest.raises(InvariantError, match="outstanding"):
            sim.run()

    def test_lost_warp_context_trips_invariant(self):
        sim = GPUSimulator(streaming_kernel(6), guarded_config(), lrr_engine)
        sim.step_until(50)
        sim.sms[0].warps.pop()
        with pytest.raises(InvariantError, match="warp contexts"):
            sim.run()

    def test_l1_accounting_corruption_trips_invariant(self):
        sim = GPUSimulator(streaming_kernel(6), guarded_config(), lrr_engine)
        sim.step_until(50)
        sim.stats.l1.hits += 1  # hits + misses no longer equals accesses
        with pytest.raises(InvariantError, match="accounting"):
            sim.run()

    def test_details_carry_structured_snapshot(self):
        sim = GPUSimulator(streaming_kernel(6), guarded_config(), lrr_engine)
        sim.step_until(50)
        sim.stats.l1.hits += 1
        with pytest.raises(InvariantError) as excinfo:
            sim.run()
        details = excinfo.value.details
        assert details["invariant"]
        assert isinstance(details["cycle"], int)
        # The payload must be JSON-serialisable for dumps and sweep records.
        json.dumps(details)

    def test_checker_respects_cadence(self):
        sim = GPUSimulator(
            mixed_kernel(8), guarded_config(integrity_interval=1), lrr_engine
        )
        every = GPUSimulator(
            mixed_kernel(8), guarded_config(integrity_interval=50), lrr_engine
        )
        sim.run()
        every.run()
        assert 0 < every.stats.integrity_checks < sim.stats.integrity_checks

    def test_checker_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            InvariantChecker(0)


class TestWatchdog:
    def test_livelocked_engine_trips_watchdog(self):
        cfg = guarded_config(integrity_interval=0, watchdog_cycles=200)
        sim = GPUSimulator(
            streaming_kernel(4), cfg, lambda: (StuckScheduler(), NullPrefetcher())
        )
        events = sim.subsystem.events
        events.schedule(1, _Requeue(events))
        with pytest.raises(WatchdogTimeout, match="no instruction issued") as excinfo:
            sim.run()
        details = excinfo.value.details
        assert details["reason"]
        assert details["sms"][0]["warps"], "per-warp status missing from dump"
        assert "dram_queue_depths" in details["memory"]
        assert details["memory"]["mshrs"][0]["capacity"] > 0

    def test_watchdog_writes_json_dump(self, tmp_path):
        cfg = guarded_config(integrity_interval=0, watchdog_cycles=200)
        sim = GPUSimulator(
            streaming_kernel(4), cfg, lambda: (StuckScheduler(), NullPrefetcher())
        )
        sim.watchdog.dump_dir = str(tmp_path)
        events = sim.subsystem.events
        events.schedule(1, _Requeue(events))
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run()
        dump_path = excinfo.value.details["dump_path"]
        assert str(excinfo.value).count(dump_path)
        with open(dump_path, encoding="utf-8") as fh:
            dump = json.load(fh)
        assert dump["kernel"] == "stream"
        assert dump["sms"][0]["warps"]

    def test_healthy_run_never_trips_watchdog(self):
        cfg = guarded_config(integrity_interval=0, watchdog_cycles=10_000)
        result = GPUSimulator(mixed_kernel(8), cfg, lrr_engine).run()
        assert result.stats.instructions > 0

    def test_cycle_budget_raises_watchdog_timeout(self):
        cfg = dataclasses.replace(make_config(), max_cycles=100)
        sim = GPUSimulator(streaming_kernel(50), cfg, lrr_engine)
        with pytest.raises(WatchdogTimeout, match="exceeded") as excinfo:
            sim.run()
        # Budget aborts reuse the dump machinery: same structured payload.
        assert excinfo.value.details["sms"]

    def test_budget_timeout_is_a_simulation_error(self):
        assert issubclass(WatchdogTimeout, SimulationError)

    def test_dump_dir_defaults_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DUMP_DIR", str(tmp_path))
        cfg = dataclasses.replace(make_config(), max_cycles=100)
        sim = GPUSimulator(streaming_kernel(50), cfg, lrr_engine)
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run()
        dump_path = excinfo.value.details["dump_path"]
        assert dump_path.startswith(str(tmp_path))
        assert json.load(open(dump_path, encoding="utf-8"))["sms"]

    def test_disabled_watchdog_never_observes(self):
        wd = Watchdog(0)
        wd.observe(object(), 10**9)  # must not touch the simulator at all

    def test_watchdog_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            Watchdog(-1)


class TestDeadlockDiagnostics:
    def test_fast_forward_deadlock_carries_snapshot(self):
        sim = GPUSimulator(streaming_kernel(4), make_config(), lrr_engine)
        sim.step_until(20)
        # Drop all pending events: warps wait on fills that never arrive.
        sim.subsystem.events._heap.clear()
        with pytest.raises(SimulationError, match="deadlock") as excinfo:
            sim.run()
        assert excinfo.value.details["sms"]
