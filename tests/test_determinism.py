"""Determinism regression: identical runs must produce identical stats.

The simlint SL001 rule exists to keep hash-order iteration out of the
simulation hot paths; these tests pin the property the rule protects —
two runs of the same (kernel, config, engine) point serialise to
byte-identical stats JSON, even under different hash seeds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import make_config, mixed_kernel
from repro.experiments.configs import CONFIGS
from repro.sm.simulator import GPUSimulator
from repro.workloads import build_kernel, workload

ENGINES = ["base", "ccws+str", "apres"]

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def stats_json(config_name: str, kernel) -> str:
    sim = GPUSimulator(kernel, make_config(num_sms=2), CONFIGS[config_name].build)
    result = sim.run()
    return json.dumps(result.stats.as_dict(), sort_keys=True)


class TestRepeatedRuns:
    @pytest.mark.parametrize("config_name", ENGINES)
    def test_stats_json_byte_identical(self, config_name):
        first = stats_json(config_name, mixed_kernel(20))
        second = stats_json(config_name, mixed_kernel(20))
        assert first == second

    def test_workload_path_byte_identical(self):
        spec = workload("KM")
        first = stats_json("apres", build_kernel(spec, 0.1))
        second = stats_json("apres", build_kernel(spec, 0.1))
        assert first == second


_SUBPROCESS_SCRIPT = """
import json
from repro.config import CacheConfig, DRAMConfig, GPUConfig
from repro.experiments.configs import CONFIGS
from repro.sm.simulator import GPUSimulator
from repro.workloads import build_kernel, workload

config = GPUConfig(
    num_sms=2,
    max_warps_per_sm=8,
    l1=CacheConfig(size_bytes=4096, associativity=4, num_mshrs=16),
    l2=CacheConfig(size_bytes=65536, associativity=8, hit_latency=50,
                   num_mshrs=32, num_banks=4, service_cycles=2),
    dram=DRAMConfig(num_partitions=4, latency=100, service_cycles=4),
    max_cycles=2_000_000,
)
kernel = build_kernel(workload("KM"), 0.1)
result = GPUSimulator(kernel, config, CONFIGS["apres"].build).run()
print(json.dumps(result.stats.as_dict(), sort_keys=True))
"""


def _run_with_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


class TestHashRandomization:
    def test_stats_stable_across_hash_seeds(self):
        """str-keyed set/dict hash order differs per seed; stats must not."""
        outputs = {seed: _run_with_hash_seed(seed) for seed in ("0", "1", "31337")}
        assert outputs["0"] == outputs["1"] == outputs["31337"]
        # Sanity: the run actually produced stats, not an empty document.
        stats = json.loads(outputs["0"])
        assert stats
