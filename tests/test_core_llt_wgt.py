"""Last Load Table and Warp Group Table."""

import pytest

from repro.core.llt import LastLoadTable
from repro.core.wgt import WarpGroupTable


class TestLLT:
    def test_starts_empty(self):
        llt = LastLoadTable(4)
        assert all(llt.get(w) is None for w in range(4))

    def test_update_and_get(self):
        llt = LastLoadTable(4)
        llt.update(2, 0x100)
        assert llt.get(2) == 0x100

    def test_group_formation_search(self):
        llt = LastLoadTable(4)
        llt.update(0, 0x100)
        llt.update(1, 0x200)
        llt.update(2, 0x100)
        assert llt.warps_with_llpc(0x100) == [0, 2]

    def test_none_matches_unissued_warps(self):
        llt = LastLoadTable(4)
        llt.update(0, 0x100)
        assert llt.warps_with_llpc(None) == [1, 2, 3]

    def test_len(self):
        assert len(LastLoadTable(48)) == 48

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LastLoadTable(0)


class TestWGT:
    def test_insert_and_lookup(self):
        wgt = WarpGroupTable(3, 8)
        gid = wgt.insert(frozenset({0, 2, 5}))
        assert wgt.lookup(gid) == frozenset({0, 2, 5})

    def test_invalidate_removes(self):
        wgt = WarpGroupTable(3, 8)
        gid = wgt.insert(frozenset({1}))
        assert wgt.invalidate(gid) == frozenset({1})
        assert wgt.lookup(gid) is None
        assert wgt.invalidate(gid) is None

    def test_fifo_replacement_at_capacity(self):
        wgt = WarpGroupTable(2, 8)
        g0 = wgt.insert(frozenset({0}))
        g1 = wgt.insert(frozenset({1}))
        g2 = wgt.insert(frozenset({2}))
        assert wgt.lookup(g0) is None  # oldest evicted
        assert wgt.lookup(g1) == frozenset({1})
        assert wgt.lookup(g2) == frozenset({2})
        assert len(wgt) == 2

    def test_ids_are_unique(self):
        wgt = WarpGroupTable(3, 8)
        ids = {wgt.insert(frozenset({0})) for _ in range(3)}
        assert len(ids) == 3

    def test_rejects_out_of_range_warps(self):
        wgt = WarpGroupTable(3, 8)
        with pytest.raises(ValueError):
            wgt.insert(frozenset({8}))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WarpGroupTable(0, 8)
