"""SLD macro-block prefetcher."""

from repro.mem.request import LoadAccess
from repro.prefetch.registry import PREFETCHERS, make_prefetcher
from repro.prefetch.sld import SLDPrefetcher

import pytest

BLOCK = 512  # 4 x 128B lines


def access(lines, pc=0x10, warp=0):
    return LoadAccess(0, warp, pc, lines[0], tuple(lines), False, 0)


class TestSLD:
    def test_first_line_no_prefetch(self):
        p = SLDPrefetcher()
        assert p.observe_line(0, False, 0) == []

    def test_second_line_prefetches_rest_of_block(self):
        p = SLDPrefetcher()
        p.observe_line(0, False, 0)
        out = p.observe_line(128, False, 1)
        assert sorted(c.addr for c in out) == [256, 384]

    def test_block_fires_once(self):
        p = SLDPrefetcher()
        p.observe_line(0, False, 0)
        p.observe_line(128, False, 1)
        assert p.observe_line(256, False, 2) == []

    def test_blocks_independent(self):
        p = SLDPrefetcher()
        p.observe_line(0, False, 0)
        p.observe_line(BLOCK, False, 1)
        assert p.observe_line(BLOCK + 128, False, 2) != []

    def test_cannot_cover_large_strides(self):
        """Accesses 512B apart never co-occupy a macro-block (Section III-C)."""
        p = SLDPrefetcher()
        out = []
        for i in range(10):
            out.extend(p.observe_line(i * 512, False, i))
        assert out == []

    def test_observe_load_feeds_all_lines(self):
        p = SLDPrefetcher()
        out = p.observe_load(access([0, 128]))
        assert sorted(c.addr for c in out) == [256, 384]

    def test_table_capacity(self):
        p = SLDPrefetcher(table_entries=2)
        p.observe_line(0, False, 0)
        p.observe_line(10 * BLOCK, False, 1)
        p.observe_line(20 * BLOCK, False, 2)  # evicts block 0
        out = p.observe_line(128, False, 3)   # re-learns block 0 from scratch
        assert out == []

    def test_reset_clears(self):
        p = SLDPrefetcher()
        p.observe_line(0, False, 0)
        p.reset(8)
        assert p.observe_line(128, False, 1) == []


class TestRegistry:
    def test_known_names(self):
        assert set(PREFETCHERS) == {"none", "str", "sld", "mta"}

    def test_construct_all(self):
        for name in PREFETCHERS:
            p = make_prefetcher(name)
            p.reset(8)
            assert p.observe_load(access([0])) == []

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("bogus")
