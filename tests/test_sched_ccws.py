"""CCWS: lost-locality scoring, throttling and eviction feedback."""

from repro.mem.request import LoadAccess
from repro.sched.base import IssueCandidate
from repro.sched.ccws import CCWSScheduler


def miss(warp, line, cycle=0, pc=0x10):
    return LoadAccess(
        sm_id=0, warp_id=warp, pc=pc, primary_addr=line,
        line_addrs=(line,), primary_hit=False, cycle=cycle,
    )


def make(num_warps=8, **kw):
    kw.setdefault("min_active", 2)
    s = CCWSScheduler(**kw)
    s.reset(num_warps)
    return s


class TestScoring:
    def test_base_score_initially(self):
        s = make()
        assert s.score(0, 0) == CCWSScheduler.BASE_SCORE

    def test_lost_locality_bumps_score(self):
        s = make(lld_gain=300)
        s.notify_eviction(0, 0x100)     # warp 0 lost line 0x100
        s.notify_load_result(miss(0, 0x100, cycle=10))
        assert s.score(0, 10) == CCWSScheduler.BASE_SCORE + 300

    def test_miss_without_vta_hit_no_bump(self):
        s = make()
        s.notify_load_result(miss(0, 0x100))
        assert s.score(0, 0) == CCWSScheduler.BASE_SCORE

    def test_other_warps_eviction_does_not_bump(self):
        s = make()
        s.notify_eviction(1, 0x100)
        s.notify_load_result(miss(0, 0x100))
        assert s.score(0, 0) == CCWSScheduler.BASE_SCORE

    def test_score_decays(self):
        s = make(lld_gain=300, decay_per_cycle=1.0)
        s.notify_eviction(0, 0x100)
        s.notify_load_result(miss(0, 0x100, cycle=0))
        assert s.score(0, 100) == CCWSScheduler.BASE_SCORE + 200

    def test_score_floor_is_base(self):
        s = make(lld_gain=300, decay_per_cycle=1.0)
        s.notify_eviction(0, 0x100)
        s.notify_load_result(miss(0, 0x100, cycle=0))
        assert s.score(0, 10_000) == CCWSScheduler.BASE_SCORE

    def test_score_cap(self):
        s = make(lld_gain=300, score_cap=600)
        for i in range(10):
            s.notify_eviction(0, 0x100 + i * 128)
            s.notify_load_result(miss(0, 0x100 + i * 128, cycle=i))
        assert s.score(0, 10) <= 600

    def test_hits_are_ignored(self):
        s = make()
        s.notify_eviction(0, 0x100)
        hit = LoadAccess(0, 0, 0x10, 0x100, (0x100,), primary_hit=True, cycle=0)
        s.notify_load_result(hit)
        assert s.score(0, 0) == CCWSScheduler.BASE_SCORE


class TestThrottling:
    def test_no_lost_locality_allows_everyone(self):
        s = make(num_warps=8)
        assert s.load_allowed_warps(0) == set(range(8))

    def test_high_scores_shrink_allowed_set(self):
        s = make(num_warps=8, lld_gain=600, score_cap=2000, min_active=2)
        for w in range(8):
            for i in range(4):
                line = (w * 100 + i) * 128
                s.notify_eviction(w, line)
                s.notify_load_result(miss(w, line, cycle=1))
        allowed = s.load_allowed_warps(2)
        assert len(allowed) < 8

    def test_min_active_floor(self):
        s = make(num_warps=8, lld_gain=10_000, score_cap=100_000, min_active=3)
        for w in range(8):
            s.notify_eviction(w, w * 128)
            s.notify_load_result(miss(w, w * 128, cycle=1))
        assert len(s.load_allowed_warps(2)) >= 3

    def test_blocked_warp_can_still_issue_alu(self):
        s = make(num_warps=4, lld_gain=10_000, score_cap=100_000, min_active=1)
        for w in (1, 2, 3):
            s.notify_eviction(w, w * 128)
            s.notify_load_result(miss(w, w * 128, cycle=1))
        allowed = s.load_allowed_warps(2)
        blocked = next(w for w in range(4) if w not in allowed)
        picked = s.select([IssueCandidate(blocked, False)], 2)
        assert picked == blocked

    def test_blocked_warp_cannot_issue_load(self):
        s = make(num_warps=4, lld_gain=10_000, score_cap=100_000, min_active=1)
        for w in range(4):
            for i in range(3):
                line = (w * 50 + i) * 128
                s.notify_eviction(w, line)
                s.notify_load_result(miss(w, line, cycle=1))
        allowed = s.load_allowed_warps(2)
        blocked = [w for w in range(4) if w not in allowed]
        if blocked:
            assert s.select([IssueCandidate(blocked[0], True)], 2) is None

    def test_finished_warps_release_quota(self):
        s = make(num_warps=4)
        s.notify_warp_finished(0)
        assert 0 not in s.load_allowed_warps(0)
        assert s.score(0, 0) == 0.0


class TestSelection:
    def test_round_robin_among_eligible(self):
        s = make(num_warps=4)
        c = [IssueCandidate(w, False) for w in range(4)]
        picks = [s.select(c, t) for t in range(4)]
        assert picks == [0, 1, 2, 3]

    def test_empty_candidates(self):
        s = make()
        assert s.select([], 0) is None
