"""The documented public API surface stays importable and coherent."""

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_core_entry_points(self):
        assert callable(repro.run)
        assert callable(repro.speedup)
        assert callable(repro.simulate)
        assert callable(repro.build_apres)
        assert callable(repro.workload)

    def test_suite_and_configs_nonempty(self):
        assert len(repro.SUITE) == 15
        assert "apres" in repro.CONFIGS

    def test_hardware_cost_reachable(self):
        assert repro.hardware_cost().total_bytes == 724

    def test_errors_hierarchy(self):
        assert issubclass(repro.ConfigError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.WorkloadError, repro.ReproError)

    def test_figures_module_attached(self):
        assert hasattr(repro.figures, "figure10")
        assert hasattr(repro.figures, "table1")


class TestDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        undocumented = []
        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if mod.name == "repro.__main__":
                continue  # importing it would run the CLI
            module = importlib.import_module(mod.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(mod.name)
        assert undocumented == []

    def test_key_classes_documented(self):
        from repro.core.laws import LAWSScheduler
        from repro.core.sap import SAPPrefetcher
        from repro.mem.cache import L1Cache
        from repro.sm.pipeline import SMCore

        for cls in (LAWSScheduler, SAPPrefetcher, L1Cache, SMCore):
            assert cls.__doc__ and len(cls.__doc__) > 20
