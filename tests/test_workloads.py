"""Workload specs, the 15-app suite and kernel lowering."""

import pytest

from repro.errors import WorkloadError
from repro.isa.address import BroadcastAddress, StridedAddress
from repro.isa.instructions import Op
from repro.workloads.spec import Category, LoadSpec, StoreSpec, WorkloadSpec
from repro.workloads.suite import (
    SUITE,
    cache_insensitive_workloads,
    cache_sensitive_workloads,
    compute_workloads,
    memory_intensive_workloads,
    workload,
)
from repro.workloads.synthetic import SubstepAddress, build_kernel

GB = 1 << 30
GEN = BroadcastAddress(GB, region_bytes=1024)


def spec(**kw):
    defaults = dict(
        name="Test",
        abbr="T",
        suite="x",
        category=Category.COMPUTE,
        loads=(LoadSpec("a", 0x10, GEN),),
        iterations=4,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestSpecValidation:
    def test_needs_loads(self):
        with pytest.raises(WorkloadError):
            spec(loads=())

    def test_rejects_duplicate_load_pcs(self):
        with pytest.raises(WorkloadError):
            spec(loads=(LoadSpec("a", 0x10, GEN), LoadSpec("b", 0x10, GEN)))

    def test_rejects_zero_iterations(self):
        with pytest.raises(WorkloadError):
            spec(iterations=0)

    def test_rejects_zero_weight(self):
        with pytest.raises(WorkloadError):
            LoadSpec("a", 0x10, GEN, weight=0)

    def test_memory_intensive_property(self):
        assert spec(category=Category.CACHE_SENSITIVE).memory_intensive
        assert spec(category=Category.CACHE_INSENSITIVE).memory_intensive
        assert not spec(category=Category.COMPUTE).memory_intensive


class TestBuildKernel:
    def test_weight_expands_occurrences(self):
        k = build_kernel(spec(loads=(LoadSpec("a", 0x10, GEN, weight=3),)))
        assert sum(1 for i in k.body if i.op is Op.LOAD) == 3
        assert all(i.pc == 0x10 for i in k.body if i.op is Op.LOAD)

    def test_alu_per_load(self):
        k = build_kernel(spec(alu_per_load=2))
        assert sum(1 for i in k.body if i.op is Op.ALU) == 2

    def test_store_appended(self):
        st = StoreSpec("out", 0x99, GEN)
        k = build_kernel(spec(store=st))
        assert k.body[-1].op is Op.STORE
        assert k.body[-1].pc == 0x99

    def test_scale_shrinks_iterations(self):
        k = build_kernel(spec(iterations=10), scale=0.5)
        assert k.iterations == 5

    def test_substep_advances_occurrences(self):
        gen = StridedAddress(GB, warp_stride=0, iter_stride=128)
        k = build_kernel(spec(loads=(LoadSpec("a", 0x10, gen, weight=2),)))
        loads = [i for i in k.body if i.op is Op.LOAD]
        a0 = loads[0].addr_gen.primary_address(0, 0)
        a1 = loads[1].addr_gen.primary_address(0, 0)
        assert a1 - a0 == 128

    def test_substep_false_repeats_address(self):
        gen = StridedAddress(GB, warp_stride=0, iter_stride=128)
        k = build_kernel(
            spec(loads=(LoadSpec("a", 0x10, gen, weight=2, substep=False),))
        )
        loads = [i for i in k.body if i.op is Op.LOAD]
        assert (
            loads[0].addr_gen.primary_address(0, 3)
            == loads[1].addr_gen.primary_address(0, 3)
        )

    def test_waves_forwarded(self):
        k = build_kernel(spec(waves=3, fresh_waves=False))
        assert k.waves == 3
        assert not k.fresh_waves


class TestSubstepAddress:
    def test_effective_iteration(self):
        inner = StridedAddress(GB, warp_stride=0, iter_stride=100)
        sub = SubstepAddress(inner, step=1, total=2)
        assert sub.primary_address(0, 3) == inner.primary_address(0, 7)

    def test_addresses_match_primary(self):
        inner = StridedAddress(GB, warp_stride=64, iter_stride=100)
        sub = SubstepAddress(inner, step=0, total=4)
        assert sub.addresses(2, 5)[0] == sub.primary_address(2, 5)


class TestSuite:
    def test_fifteen_apps(self):
        assert len(SUITE) == 15

    def test_table4_membership(self):
        assert set(SUITE) == {
            "BFS", "MUM", "NW", "SPMV", "KM",
            "LUD", "SRAD", "PA", "HISTO", "BP",
            "PF", "CS", "ST", "HS", "SP",
        }

    def test_category_partition(self):
        assert [w.abbr for w in cache_sensitive_workloads()] == [
            "BFS", "MUM", "NW", "SPMV", "KM"
        ]
        assert [w.abbr for w in cache_insensitive_workloads()] == [
            "LUD", "SRAD", "PA", "HISTO", "BP"
        ]
        assert [w.abbr for w in compute_workloads()] == ["PF", "CS", "ST", "HS", "SP"]
        assert len(memory_intensive_workloads()) == 10

    def test_lookup(self):
        assert workload("KM").abbr == "KM"
        with pytest.raises(KeyError):
            workload("XYZ")

    @pytest.mark.parametrize("abbr", sorted(SUITE))
    def test_every_app_builds(self, abbr):
        k = build_kernel(workload(abbr), scale=0.1)
        assert k.iterations >= 1
        assert any(i.op is Op.LOAD for i in k.body)

    def test_km_paper_stride(self):
        km = workload("KM")
        gen = km.loads[0].gen
        delta = gen.primary_address(5, 0) - gen.primary_address(4, 0)
        assert delta == 4352  # Table I

    def test_table1_pcs_present(self):
        assert {l.pc for l in workload("BFS").loads} == {0x110, 0xF0, 0x198}
        assert {l.pc for l in workload("SRAD").loads} == {0x250, 0x230, 0x350}
        assert 0xE8 in {l.pc for l in workload("KM").loads}

    def test_bp_reread_shares_input_region(self):
        bp = workload("BP")
        by_name = {l.name: l for l in bp.loads}
        assert by_name["input"].gen is by_name["input_again"].gen

    def test_generators_deterministic(self):
        for w in SUITE.values():
            for l in w.loads:
                assert l.gen.addresses(3, 5) == l.gen.addresses(3, 5)
