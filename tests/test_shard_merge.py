"""Deterministic barrier merge: log ordering and grouping invariance.

The shard engine's determinism argument rests on one property: sorting
the union of per-shard boundary logs by ``(cycle, sm_id, seq)``
reproduces exactly the order in which the serial tick loop (SM 0..N-1,
program order within an SM) presents requests to the shared L2. These
tests pin the log format and that invariance directly.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.shard import ShardPlan, shard_execute
from repro.shard.proxy import (
    REQ_MISS,
    REQ_PREFETCH,
    REQ_STORE,
    ShardMemoryProxy,
)
from repro.sm.simulator import simulate
from repro.stats.counters import SimStats
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel


def _proxy(sm_id: int) -> ShardMemoryProxy:
    return ShardMemoryProxy(sm_id, experiment_gpu_config(), SimStats())


def test_proxy_log_entries_preserve_program_order():
    proxy = _proxy(3)
    proxy.forward_miss(0x100, now=7, is_prefetch=False)
    proxy.forward_miss(0x140, now=7, is_prefetch=True)
    proxy.forward_miss(0x180, now=9, is_prefetch=False)
    assert proxy.log == [
        (7, 3, 0, REQ_MISS, 0x100),
        (7, 3, 1, REQ_PREFETCH, 0x140),
        (9, 3, 2, REQ_MISS, 0x180),
    ]
    assert proxy.pending == 3


def test_proxy_drain_hands_off_and_resets():
    proxy = _proxy(0)
    proxy.forward_miss(0x200, now=1, is_prefetch=False)
    first = proxy.drain_log()
    assert first == [(1, 0, 0, REQ_MISS, 0x200)]
    assert proxy.drain_log() == []
    # seq keeps counting across barriers so merged order stays total.
    proxy.forward_miss(0x240, now=2, is_prefetch=False)
    assert proxy.drain_log() == [(2, 0, 1, REQ_MISS, 0x240)]


def test_merged_logs_sort_into_serial_presentation_order():
    # Two proxies emitting at interleaved cycles: sorting the union must
    # order by cycle first, then SM id, then per-SM program order —
    # exactly the serial tick loop's visit order.
    a, b = _proxy(0), _proxy(1)
    b.forward_miss(0x40, now=5, is_prefetch=False)
    a.forward_miss(0x80, now=5, is_prefetch=False)
    a.forward_miss(0xC0, now=5, is_prefetch=False)
    b.forward_miss(0x00, now=4, is_prefetch=False)
    merged = a.drain_log() + b.drain_log()
    merged.sort()
    assert merged == [
        (4, 1, 1, REQ_MISS, 0x00),
        (5, 0, 0, REQ_MISS, 0x80),
        (5, 0, 1, REQ_MISS, 0xC0),
        (5, 1, 0, REQ_MISS, 0x40),
    ]


def test_store_entries_share_the_sequence_counter():
    proxy = _proxy(2)

    class _L1Stub:
        def store(self, line, now):
            pass

    proxy.attach_l1(_L1Stub())
    proxy.forward_miss(0x300, now=3, is_prefetch=False)
    proxy.store(2, [0x340, 0x380], now=3)
    assert proxy.log == [
        (3, 2, 0, REQ_MISS, 0x300),
        (3, 2, 1, REQ_STORE, 0x340),
        (3, 2, 2, REQ_STORE, 0x380),
    ]


def test_lockstep_stats_independent_of_shard_grouping():
    # The same run split 2 ways and 3 ways must merge to identical stats
    # — the barrier order depends only on (cycle, sm_id, seq), never on
    # which shard carried the SM.
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=6)
    kernel = build_kernel(workload("BFS"), 0.05)
    engine = CONFIGS["apres"].build
    serial = simulate(kernel, cfg, engine)
    by_grouping = [
        shard_execute(kernel, cfg, engine, ShardPlan(shards, 1))[0]
        for shards in (2, 3, 6)
    ]
    for sharded in by_grouping:
        assert sharded.stats.as_dict() == serial.stats.as_dict()
        assert sharded.engine_events == serial.engine_events
