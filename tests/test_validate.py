"""Claim-check machinery (tiny scale: wiring, not the real claims)."""

import pytest

from repro.experiments.runner import clear_cache
from repro.experiments.validate import ClaimResult, check_claims, format_report


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCheckClaims:
    def test_returns_results_for_subset(self):
        results = check_claims(scale=0.05, apps=["KM", "LUD"])
        assert len(results) >= 6
        assert all(isinstance(r, ClaimResult) for r in results)

    def test_table2_claim_always_passes(self):
        results = check_claims(scale=0.05, apps=["KM"])
        t2 = next(r for r in results if "hardware cost" in r.name)
        assert t2.passed

    def test_km_claims_skipped_without_km(self):
        results = check_claims(scale=0.05, apps=["LUD"])
        assert not any("KM" in r.name for r in results)


class TestFormatReport:
    def test_report_shape(self):
        results = [
            ClaimResult("a", "p", "m", True),
            ClaimResult("b", "p", "m", False),
        ]
        text = format_report(results)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 claims hold" in text
