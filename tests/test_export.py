"""JSON export of experiment results."""

import json

import pytest

from repro.experiments.export import export_all, export_figure, to_jsonable
from repro.experiments.runner import clear_cache

SCALE = 0.05


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestToJsonable:
    def test_dataclass(self):
        from repro.core.cost import hardware_cost

        data = to_jsonable(hardware_cost())
        assert data["llt_bytes"] == 192

    def test_nested(self):
        assert to_jsonable({"a": (1, 2), "b": {"c": [3]}}) == {
            "a": [1, 2], "b": {"c": [3]}
        }

    def test_int_keys_become_strings(self):
        assert to_jsonable({10: 1.5}) == {"10": 1.5}


class TestExportFigure:
    def test_table2(self, tmp_path):
        path = tmp_path / "table2.json"
        payload = export_figure("table2", path)
        on_disk = json.loads(path.read_text())
        assert on_disk == to_jsonable(payload)
        assert on_disk["data"]["llt_bytes"] == 192

    def test_figure12(self, tmp_path):
        path = tmp_path / "f12.json"
        export_figure("figure12", path, apps=["KM"], scale=SCALE)
        data = json.loads(path.read_text())["data"]
        assert set(data) == {"ccws+str", "apres"}
        assert "KM" in data["apres"]

    def test_unknown_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export"):
            export_figure("figure99", tmp_path / "x.json")


class TestExportAll:
    def test_writes_every_experiment(self, tmp_path):
        written = export_all(tmp_path, apps=["KM"], scale=SCALE)
        names = {p.stem for p in written}
        assert "table1" in names
        assert "figure10" in names
        assert len(written) == 11
        for p in written:
            json.loads(p.read_text())  # all valid JSON
