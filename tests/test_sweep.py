"""Crash-safe sweep runner: persistence, resume, retries, CLI wiring."""

import dataclasses
import json

import pytest

from conftest import make_config
from repro.cli import main
from repro.errors import WatchdogTimeout
from repro.experiments import runner
from repro.experiments.sweep import (
    ResultsStore,
    SweepPoint,
    run_sweep,
    sweep_points,
)


APPS = ["BFS", "KM"]
SCALE = 0.05


def tiny_points(apps=APPS, configs=("base",), scales=(SCALE,)):
    return sweep_points(apps, configs, scales)


class TestSweepPoints:
    def test_cartesian_product(self):
        points = sweep_points(["BFS", "KM"], ["base", "apres"], [0.1, 0.5])
        assert len(points) == 8
        assert points[0] == SweepPoint("BFS", "base", 0.1)

    def test_key_is_stable_and_unique(self):
        points = tiny_points(configs=["base", "apres"])
        keys = [p.key for p in points]
        assert len(set(keys)) == len(keys)
        assert SweepPoint("BFS", "base", 0.5).key == "BFS|base|0.5"
        # %g keeps keys identical across int/float spellings of a scale.
        assert SweepPoint("BFS", "base", 1.0).key == "BFS|base|1"

    def test_unknown_workload_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown workload"):
            sweep_points(["NOPE"], ["base"])

    def test_unknown_config_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown config"):
            sweep_points(["BFS"], ["NOPE"])


class TestResultsStore:
    def test_roundtrip_and_last_record_wins(self, tmp_path):
        store = ResultsStore(str(tmp_path / "r.jsonl"))
        store.append({"key": "a", "status": "failed"})
        store.append({"key": "b", "status": "ok"})
        store.append({"key": "a", "status": "ok"})
        records = store.load()
        assert records["a"]["status"] == "ok"
        assert records["b"]["status"] == "ok"

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsStore(str(tmp_path / "none.jsonl")).load() == {}

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultsStore(str(path))
        store.append({"key": "a", "status": "ok"})
        # Simulate a SIGKILL mid-append: a half-written final line.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "b", "stat')
        records = store.load()
        assert set(records) == {"a"}

    def test_keyless_lines_ignored(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"status": "ok"}\n{"key": "a", "status": "ok"}\n')
        assert set(ResultsStore(str(path)).load()) == {"a"}


class TestRunSweep:
    def test_sweep_persists_every_point(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        summary = run_sweep(tiny_points(), out, gpu_config=make_config())
        assert summary.simulated == len(APPS)
        assert summary.failed == 0
        records = ResultsStore(out).load()
        assert len(records) == len(APPS)
        for record in records.values():
            assert record["status"] == "ok"
            assert record["cycles"] > 0
            assert record["stats"]["instructions"] > 0

    def test_resume_skips_completed_points(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        cfg = make_config()
        run_sweep(tiny_points(), out, gpu_config=cfg)
        again = run_sweep(tiny_points(), out, gpu_config=cfg, resume_from=out)
        assert again.simulated == 0
        assert again.skipped == len(APPS)

    def test_interrupted_plus_resumed_equals_uninterrupted(self, tmp_path):
        cfg = make_config()
        reference = str(tmp_path / "ref.jsonl")
        run_sweep(tiny_points(), reference, gpu_config=cfg)

        # "Crash" after one point, then restart the same command in place.
        out = str(tmp_path / "partial.jsonl")
        first = run_sweep(tiny_points(), out, gpu_config=cfg, max_points=1)
        assert first.simulated == 1
        run_sweep(tiny_points(), out, gpu_config=cfg, resume_from=out)

        assert ResultsStore(out).load() == ResultsStore(reference).load()

    def test_resume_into_fresh_store_copies_old_records(self, tmp_path):
        cfg = make_config()
        old = str(tmp_path / "old.jsonl")
        run_sweep(tiny_points(apps=["BFS"]), old, gpu_config=cfg)

        new = str(tmp_path / "new.jsonl")
        summary = run_sweep(tiny_points(), new, gpu_config=cfg, resume_from=old)
        assert summary.skipped == 1 and summary.simulated == 1
        # new alone now holds the full sweep.
        assert len(ResultsStore(new).load()) == len(APPS)

    def test_failed_point_is_recorded_and_sweep_continues(self, tmp_path):
        doomed = dataclasses.replace(make_config(), max_cycles=60)
        out = str(tmp_path / "sweep.jsonl")
        delays = []
        summary = run_sweep(
            tiny_points(),
            out,
            gpu_config=doomed,
            retries=1,
            sleep=delays.append,
        )
        assert summary.simulated == len(APPS)
        assert summary.failed == len(APPS)
        assert summary.failed_keys == [p.key for p in tiny_points()]
        for record in ResultsStore(out).load().values():
            assert record["status"] == "failed"
            assert record["error"] == "WatchdogTimeout"
            assert "exceeded" in record["message"]
            json.dumps(record["details"])  # structured dump must serialise

    def test_retry_backoff_is_exponential(self, tmp_path):
        doomed = dataclasses.replace(make_config(), max_cycles=60)
        delays = []
        run_sweep(
            tiny_points(apps=["BFS"]),
            str(tmp_path / "s.jsonl"),
            gpu_config=doomed,
            retries=2,
            backoff_s=0.25,
            sleep=delays.append,
        )
        assert delays == [0.25, 0.5]
        record = next(iter(ResultsStore(str(tmp_path / "s.jsonl")).load().values()))
        assert record["attempts"] == 3

    def test_failed_points_are_retried_on_resume(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        doomed = dataclasses.replace(make_config(), max_cycles=60)
        run_sweep(
            tiny_points(apps=["BFS"]), out, gpu_config=doomed,
            retries=0, sleep=lambda s: None,
        )
        # Same store, healthy config: the failure is not treated as done.
        summary = run_sweep(
            tiny_points(apps=["BFS"]), out, gpu_config=make_config(),
            resume_from=out,
        )
        assert summary.skipped == 0 and summary.simulated == 1
        assert ResultsStore(out).load()["BFS|base|0.05"]["status"] == "ok"

    def test_records_are_deterministic(self, tmp_path):
        cfg = make_config()
        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        run_sweep(tiny_points(apps=["KM"]), a, gpu_config=cfg)
        run_sweep(tiny_points(apps=["KM"]), b, gpu_config=cfg)
        assert ResultsStore(a).load() == ResultsStore(b).load()


class TestRunnerCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        limit = runner.cache_limit()
        runner.clear_cache()
        yield
        runner.set_cache_limit(limit)
        runner.clear_cache()

    def test_cache_is_bounded_lru(self):
        runner.set_cache_limit(2)
        cfg = make_config()
        for scale in (0.03, 0.04, 0.05):
            runner.run("BFS", "base", scale=scale, gpu_config=cfg)
        assert len(runner._CACHE) == 2
        scales = sorted(key[2] for key in runner._CACHE)
        assert scales == [0.04, 0.05], "oldest entry should have been evicted"

    def test_hit_refreshes_recency(self):
        runner.set_cache_limit(2)
        cfg = make_config()
        runner.run("BFS", "base", scale=0.03, gpu_config=cfg)
        runner.run("BFS", "base", scale=0.04, gpu_config=cfg)
        runner.run("BFS", "base", scale=0.03, gpu_config=cfg)  # refresh
        runner.run("BFS", "base", scale=0.05, gpu_config=cfg)  # evicts 0.04
        assert sorted(k[2] for k in runner._CACHE) == [0.03, 0.05]

    def test_shrinking_limit_evicts_immediately(self):
        cfg = make_config()
        for scale in (0.03, 0.04, 0.05):
            runner.run("BFS", "base", scale=scale, gpu_config=cfg)
        runner.set_cache_limit(1)
        assert len(runner._CACHE) == 1

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            runner.set_cache_limit(0)

    def test_gpu_config_stays_hashable_cache_key(self):
        from repro.config import GPUConfig

        assert GPUConfig.__dataclass_params__.frozen
        assert hash(GPUConfig()) == hash(GPUConfig())


class TestSweepCLI:
    def test_sweep_command_writes_store(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        code = main([
            "sweep", "--out", out, "--apps", "BFS",
            "--configs", "base", "--scales", "0.05",
        ])
        assert code == 0
        assert ResultsStore(out).load()["BFS|base|0.05"]["status"] == "ok"
        printed = capsys.readouterr().out
        assert "BFS|base|0.05" in printed

    def test_sweep_resume_flag_skips_done_points(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        argv = [
            "sweep", "--out", out, "--apps", "BFS",
            "--configs", "base", "--scales", "0.05",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume-from", out]) == 0
        resumed_out = capsys.readouterr().out
        # All points skipped: no per-point progress lines, only the summary.
        assert "[sweep]" not in resumed_out
        assert "skipped" in resumed_out

    def test_sweep_with_failures_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        code = main([
            "sweep", "--out", out, "--apps", "BFS", "--configs", "base",
            "--scales", "0.05", "--cycle-budget", "60", "--retries", "0",
            "--backoff", "0",
        ])
        assert code == 1
        assert "failed" in capsys.readouterr().out

    def test_run_cycle_budget_exits_with_repro_error_code(self, capsys):
        code = main(["run", "KM", "base", "--scale", "0.2",
                     "--cycle-budget", "200"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: WatchdogTimeout:")
        assert err.count("\n") == 1, "diagnostic must stay one line"

    def test_sweep_rejects_unknown_app(self, tmp_path, capsys):
        code = main(["sweep", "--out", str(tmp_path / "x.jsonl"),
                     "--apps", "NOPE"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestWallClockTimeout:
    def test_timeout_produces_watchdog_failure_record(self, tmp_path):
        from repro.experiments.sweep import _wall_clock_limit

        with pytest.raises(WatchdogTimeout, match="wall-clock"):
            with _wall_clock_limit(0.05, "k"):
                while True:
                    pass

    def test_zero_timeout_is_disabled(self):
        from repro.experiments.sweep import _wall_clock_limit

        with _wall_clock_limit(None, "k"):
            pass
        with _wall_clock_limit(0, "k"):
            pass
