"""MASCAR: saturation detection and owner-warp memory gating."""

import pytest

from repro.sched.base import IssueCandidate
from repro.sched.mascar import MASCARScheduler


class FakeL1:
    """Stands in for the L1: exposes a settable MSHR occupancy."""

    def __init__(self):
        self.mshr_occupancy = 0.0


def make(sat_on=0.9, sat_off=0.5):
    s = MASCARScheduler(saturate_on=sat_on, saturate_off=sat_off)
    s.reset(8)
    l1 = FakeL1()
    s.attach_l1(l1)
    return s, l1


def mem(*warps):
    return [IssueCandidate(w, True) for w in warps]


def compute(*warps):
    return [IssueCandidate(w, False) for w in warps]


class TestSaturationDetection:
    def test_starts_unsaturated(self):
        s, _ = make()
        assert not s.in_memory_phase

    def test_enters_memory_phase(self):
        s, l1 = make()
        l1.mshr_occupancy = 0.95
        s.select(mem(0, 1), 0)
        assert s.in_memory_phase

    def test_hysteresis_exit(self):
        s, l1 = make()
        l1.mshr_occupancy = 0.95
        s.select(mem(0, 1), 0)
        l1.mshr_occupancy = 0.7  # between off and on: stays saturated
        s.select(mem(0, 1), 1)
        assert s.in_memory_phase
        l1.mshr_occupancy = 0.4
        s.select(mem(0, 1), 2)
        assert not s.in_memory_phase

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            MASCARScheduler(saturate_on=0.4, saturate_off=0.6)


class TestMemoryPhase:
    def test_only_owner_issues_memory(self):
        s, l1 = make()
        l1.mshr_occupancy = 1.0
        first = s.select(mem(2, 3, 4), 0)
        assert first == 2  # lowest becomes owner
        s.notify_issue(2, True, 0)  # owner's memory op is now in flight
        assert s.select(mem(3, 4), 1) is None  # owner busy, others blocked

    def test_compute_always_allowed(self):
        s, l1 = make()
        l1.mshr_occupancy = 1.0
        s.select(mem(2, 3), 0)
        assert s.select(compute(5, 6), 1) == 5

    def test_owner_released_on_mem_complete(self):
        s, l1 = make()
        l1.mshr_occupancy = 1.0
        owner = s.select(mem(2, 3), 0)
        s.notify_issue(owner, True, 0)
        s.notify_mem_complete(owner, 50)
        # Owner not a candidate anymore: ownership moves on.
        assert s.select(mem(3, 4), 51) == 3

    def test_owner_reassigned_when_finished(self):
        s, l1 = make()
        l1.mshr_occupancy = 1.0
        owner = s.select(mem(2, 3), 0)
        s.notify_warp_finished(owner)
        assert s.select(mem(3, 4), 1) == 3


class TestNormalPhase:
    def test_round_robin_when_unsaturated(self):
        s, l1 = make()
        l1.mshr_occupancy = 0.0
        picks = [s.select(mem(0, 1, 2, 3), t) for t in range(4)]
        assert picks == [0, 1, 2, 3]

    def test_no_l1_attached_never_saturates(self):
        s = MASCARScheduler()
        s.reset(4)
        assert s.select(mem(0, 1), 0) == 0
        assert not s.in_memory_phase
