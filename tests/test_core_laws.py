"""LAWS: queue-based priority scheduling driven by load outcomes."""

from repro.core.laws import LAWSScheduler
from repro.mem.request import LoadAccess
from repro.sched.base import IssueCandidate


def result(warp, pc, hit, addr=0x1000, cycle=0):
    return LoadAccess(0, warp, pc, addr, (addr,), hit, cycle)


def make(n=6):
    s = LAWSScheduler()
    s.reset(n)
    return s


def cands(*warps, mem=False):
    return [IssueCandidate(w, mem) for w in warps]


class TestSelection:
    def test_initial_order_is_warp_id(self):
        s = make()
        assert s.queue == (0, 1, 2, 3, 4, 5)
        assert s.select(cands(3, 1, 5), 0) == 1

    def test_first_ready_from_head(self):
        s = make()
        assert s.select(cands(4, 5), 0) == 4

    def test_empty(self):
        assert make().select([], 0) is None


class TestGrouping:
    def test_hit_moves_group_to_head(self):
        s = make()
        # Warps 2 and 4 share LLPC 0x10 with the issuer (warp 0).
        for w in (0, 2, 4):
            s.notify_load_result(result(w, 0x10, hit=True))
        # Warp 0 issues its next load at 0x20 and hits: group = {0,2,4}.
        s.notify_load_result(result(0, 0x20, hit=True))
        assert s.queue[:3] == (0, 2, 4) or set(s.queue[:3]) == {0, 2, 4}

    def test_miss_moves_group_to_tail(self):
        s = make()
        for w in (0, 2, 4):
            s.notify_load_result(result(w, 0x10, hit=True))
        s.notify_load_result(result(0, 0x20, hit=False))
        assert set(s.queue[-3:]) == {0, 2, 4}

    def test_relative_order_preserved_within_group(self):
        s = make()
        for w in (0, 2, 4):
            s.notify_load_result(result(w, 0x10, hit=True))
        before = [w for w in s.queue if w in {0, 2, 4}]
        s.notify_load_result(result(0, 0x20, hit=True))
        after = [w for w in s.queue if w in {0, 2, 4}]
        assert after == before

    def test_llpc_tracking(self):
        s = make()
        s.notify_load_result(result(3, 0x10, hit=True))
        assert s.llpc_of(3) == 0x10
        s.notify_load_result(result(3, 0x20, hit=True))
        assert s.llpc_of(3) == 0x20

    def test_finished_warps_excluded_from_groups(self):
        s = make()
        for w in (0, 2, 4):
            s.notify_load_result(result(w, 0x10, hit=True))
        s.notify_warp_finished(2)
        access = result(0, 0x20, hit=False)
        s.notify_load_result(access)
        group = s.take_pending_group(access)
        assert group is not None and 2 not in group


class TestSAPHandoff:
    def test_pending_group_on_miss(self):
        s = make()
        for w in (0, 1):
            s.notify_load_result(result(w, 0x10, hit=True))
        access = result(0, 0x20, hit=False)
        s.notify_load_result(access)
        assert s.take_pending_group(access) == frozenset({0, 1})

    def test_pending_group_is_one_shot(self):
        s = make()
        access = result(0, 0x20, hit=False)
        s.notify_load_result(access)
        assert s.take_pending_group(access) is not None
        assert s.take_pending_group(access) is None

    def test_no_pending_group_on_hit(self):
        s = make()
        access = result(0, 0x20, hit=True)
        s.notify_load_result(access)
        assert s.take_pending_group(access) is None

    def test_pending_group_matched_to_access(self):
        s = make()
        first = result(0, 0x20, hit=False)
        s.notify_load_result(first)
        other = result(0, 0x20, hit=False)
        assert s.take_pending_group(other) is None


class TestPrefetchTargets:
    def test_targets_promoted_to_head(self):
        s = make()
        s.notify_prefetch_targets([4, 5])
        assert set(s.queue[:2]) == {4, 5}

    def test_empty_targets_noop(self):
        s = make()
        before = s.queue
        s.notify_prefetch_targets([])
        assert s.queue == before
