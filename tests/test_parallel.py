"""Parallel experiment engine: pool sweeps, memoization, prewarming.

The contract under test everywhere here is *bit-identity*: a parallel or
cache-warm run must produce exactly what the serial cold run produces —
same JSONL bytes, same figure payloads — because every simulation point
is deterministic and all persistence stays in the parent process.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from conftest import make_config
from repro.experiments import runner
from repro.experiments.parallel import (
    ProgressWriter,
    QueueHeartbeatSink,
    figure_points,
    parallel_map,
    prewarm,
    resolve_jobs,
    scorecard_points,
)
from repro.experiments.sweep import ResultsStore, run_sweep, sweep_points
from repro.registry.store import RegistryStore

REPO_ROOT = Path(__file__).resolve().parent.parent

APPS = ["BFS", "KM"]
SCALE = 0.05


def tiny_points(apps=APPS, configs=("base", "apres"), scales=(SCALE,)):
    return sweep_points(apps, configs, scales)


@pytest.fixture(autouse=True)
def fresh_run_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
            resolve_jobs(None)


class TestProgressWriter:
    def test_concurrent_lines_never_interleave(self):
        stream = io.StringIO()
        writer = ProgressWriter(stream)
        payloads = [f"line-{i}" * 50 for i in range(8)]

        def spam(text):
            for _ in range(25):
                writer.line(text)

        threads = [threading.Thread(target=spam, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 8 * 25
        assert set(lines) == set(payloads)


class TestQueueHeartbeatSink:
    def test_forwards_interval_as_tuple(self):
        class StubQueue:
            def __init__(self):
                self.items = []

            def put(self, item):
                self.items.append(item)

        queue = StubQueue()
        sink = QueueHeartbeatSink(queue, "KM|base|0.05")
        sink.on_interval({"cycle_end": 5000, "ipc": 0.5, "ipc_cum": 0.4})
        assert queue.items == [("KM|base|0.05", 5000, 0.5, 0.4)]

    def test_queue_failure_is_swallowed(self):
        class DeadQueue:
            def put(self, item):
                raise BrokenPipeError("manager gone")

        sink = QueueHeartbeatSink(DeadQueue(), "k")
        sink.on_interval({"cycle_end": 1, "ipc": 0.1, "ipc_cum": 0.1})  # no raise


class TestParallelSweepIdentity:
    def test_jobs2_jsonl_is_byte_identical_to_serial(self, tmp_path):
        cfg = make_config()
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        s1 = run_sweep(tiny_points(), str(serial), gpu_config=cfg)
        s2 = run_sweep(tiny_points(), str(parallel), gpu_config=cfg, jobs=2)
        assert s1.simulated == s2.simulated == len(tiny_points())
        assert serial.read_bytes() == parallel.read_bytes()

    def test_parallel_failure_records_match_serial(self, tmp_path):
        doomed = make_config()
        import dataclasses

        doomed = dataclasses.replace(doomed, max_cycles=60)
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_sweep(tiny_points(), str(serial), gpu_config=doomed,
                  retries=0, sleep=lambda s: None)
        summary = run_sweep(tiny_points(), str(parallel), gpu_config=doomed,
                            retries=0, jobs=2)
        assert summary.failed == len(tiny_points())
        assert serial.read_bytes() == parallel.read_bytes()

    def test_worker_crash_becomes_failure_record(self, tmp_path, monkeypatch):
        def dead_pool(tasks, jobs, heartbeat_queue=None, supervisor=None):
            for task in tasks:
                yield task.index, MemoryError("worker OOM-killed")

        monkeypatch.setattr(
            "repro.experiments.parallel.run_point_tasks", dead_pool)
        out = tmp_path / "crash.jsonl"
        summary = run_sweep(tiny_points(apps=["BFS"], configs=("base",)),
                            str(out), gpu_config=make_config(), jobs=2)
        assert summary.failed == 1
        record = next(iter(ResultsStore(str(out)).load().values()))
        assert record["status"] == "failed"
        assert record["details"]["kind"] == "worker-crash"
        assert record["details"]["error"] == "MemoryError"
        assert "worker died" in record["message"]


class TestRegistryMemoization:
    def test_warm_rerun_replays_without_simulating(self, tmp_path):
        cfg = make_config()
        registry = RegistryStore(tmp_path / "reg")
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        first = run_sweep(tiny_points(), str(cold), gpu_config=cfg,
                          registry=registry)
        assert first.cache_hits == 0
        assert first.cache_misses == len(tiny_points())
        second = run_sweep(tiny_points(), str(warm), gpu_config=cfg,
                           registry=registry)
        assert second.simulated == 0
        assert second.cache_hits == len(tiny_points())
        assert second.cache_misses == 0
        assert cold.read_bytes() == warm.read_bytes()

    def test_warm_parallel_rerun_is_also_identical(self, tmp_path):
        cfg = make_config()
        registry = RegistryStore(tmp_path / "reg")
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        run_sweep(tiny_points(), str(cold), gpu_config=cfg, registry=registry)
        summary = run_sweep(tiny_points(), str(warm), gpu_config=cfg,
                            registry=registry, jobs=2)
        assert summary.simulated == 0
        assert summary.cache_hits == len(tiny_points())
        assert cold.read_bytes() == warm.read_bytes()

    def test_no_cache_forces_resimulation(self, tmp_path):
        cfg = make_config()
        registry = RegistryStore(tmp_path / "reg")
        cold = tmp_path / "cold.jsonl"
        again = tmp_path / "again.jsonl"
        run_sweep(tiny_points(), str(cold), gpu_config=cfg, registry=registry)
        summary = run_sweep(tiny_points(), str(again), gpu_config=cfg,
                            registry=registry, use_cache=False)
        assert summary.simulated == len(tiny_points())
        assert summary.cache_hits == 0
        assert cold.read_bytes() == again.read_bytes()

    def test_config_change_misses_the_cache(self, tmp_path):
        registry = RegistryStore(tmp_path / "reg")
        run_sweep(tiny_points(configs=("base",)), str(tmp_path / "a.jsonl"),
                  gpu_config=make_config(), registry=registry)
        summary = run_sweep(
            tiny_points(configs=("base",)), str(tmp_path / "b.jsonl"),
            gpu_config=make_config(l1_bytes=8 * 1024), registry=registry)
        assert summary.cache_hits == 0
        assert summary.simulated == len(APPS)

    def test_failures_are_never_memoised(self, tmp_path):
        import dataclasses

        registry = RegistryStore(tmp_path / "reg")
        doomed = dataclasses.replace(make_config(), max_cycles=60)
        run_sweep(tiny_points(apps=["BFS"], configs=("base",)),
                  str(tmp_path / "a.jsonl"), gpu_config=doomed,
                  retries=0, sleep=lambda s: None, registry=registry)
        # Same identity, healthy config: must simulate, not replay a failure.
        summary = run_sweep(tiny_points(apps=["BFS"], configs=("base",)),
                            str(tmp_path / "b.jsonl"), gpu_config=doomed,
                            retries=0, sleep=lambda s: None, registry=registry)
        assert summary.cache_hits == 0


class TestParallelResume:
    def test_partial_then_parallel_resume_equals_serial(self, tmp_path):
        cfg = make_config()
        reference = tmp_path / "ref.jsonl"
        run_sweep(tiny_points(), str(reference), gpu_config=cfg)

        out = tmp_path / "partial.jsonl"
        first = run_sweep(tiny_points(), str(out), gpu_config=cfg,
                          max_points=1, jobs=2)
        assert first.simulated == 1
        run_sweep(tiny_points(), str(out), gpu_config=cfg,
                  resume_from=str(out), jobs=2)
        assert ResultsStore(str(out)).load() == ResultsStore(str(reference)).load()

    def test_sigkilled_parallel_sweep_resumes_to_serial_reference(self, tmp_path):
        """SIGKILL a --jobs 2 CLI sweep mid-flight; --resume-from completes it."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        base_cmd = [
            sys.executable, "-m", "repro", "sweep",
            "--apps", "BFS", "KM", "LUD", "SPMV",
            "--configs", "base", "apres",
            "--scales", str(SCALE), "--no-registry",
        ]
        reference = tmp_path / "ref.jsonl"
        subprocess.run(base_cmd + ["--out", str(reference)], check=True,
                       env=env, cwd=REPO_ROOT, timeout=600,
                       stdout=subprocess.DEVNULL)

        out = tmp_path / "killed.jsonl"
        proc = subprocess.Popen(
            base_cmd + ["--out", str(out), "--jobs", "2"],
            env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(3.0)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        subprocess.run(
            base_cmd + ["--out", str(out), "--resume-from", str(out),
                        "--jobs", "2"],
            check=True, env=env, cwd=REPO_ROOT, timeout=600,
            stdout=subprocess.DEVNULL)
        # Byte-compare is wrong here (the kill can tear the tail line);
        # semantic store equality is the resume contract.
        assert ResultsStore(str(out)).load() == ResultsStore(str(reference)).load()


class TestPrewarm:
    def test_prewarm_seeds_the_run_cache(self, tmp_path):
        cfg = make_config()
        points = [("BFS", "base", SCALE, cfg), ("KM", "base", SCALE, cfg)]
        assert prewarm(points, jobs=2) == 2
        assert runner.is_cached("BFS", "base", SCALE, cfg)
        assert runner.is_cached("KM", "base", SCALE, cfg)
        # Cached and duplicate points are free on the second pass.
        assert prewarm(points + points, jobs=2) == 0

    def test_prewarmed_results_match_inprocess_results(self):
        cfg = make_config()
        direct = runner.run("BFS", "base", SCALE, cfg)
        runner.clear_cache()
        prewarm([("BFS", "base", SCALE, cfg)], jobs=2)
        warmed = runner.run("BFS", "base", SCALE, cfg)
        assert warmed.cycles == direct.cycles
        assert warmed.ipc == direct.ipc
        assert warmed.sim.stats.as_dict() == direct.sim.stats.as_dict()

    def test_parallel_map_preserves_order(self):
        assert parallel_map(abs, [-3, -1, -2], jobs=2) == [3, 1, 2]
        assert parallel_map(abs, [-3, -1, -2], jobs=1) == [3, 1, 2]

    def test_scorecard_identical_at_jobs4(self):
        from repro.registry.scorecard import scorecard

        serial = scorecard(figures=["figure10"], apps=["KM"], scale=SCALE)
        runner.clear_cache()
        prewarm(scorecard_points(["figure10"], ["KM"], SCALE), jobs=4)
        warmed = scorecard(figures=["figure10"], apps=["KM"], scale=SCALE)
        assert json.dumps(serial["figures"], sort_keys=True) == \
            json.dumps(warmed["figures"], sort_keys=True)


class TestFigurePoints:
    def test_figure10_points_cover_configs_times_apps(self):
        points = figure_points("figure10", apps=["KM", "BFS"], scale=SCALE)
        assert len(points) == 6 * 2  # 5 configs + base, two apps
        assert all(p[2] == SCALE for p in points)

    def test_figure2_uses_two_l1_sizes_per_app(self):
        points = figure_points("figure2", apps=["KM"], scale=SCALE)
        assert len(points) == 2
        sizes = {p[3].l1.size_bytes for p in points}
        assert len(sizes) == 2

    def test_unprewarmable_names_return_empty(self):
        assert figure_points("table1", apps=["KM"]) == []
        assert figure_points("nonsense") == []

    def test_scorecard_points_deduplicate_across_figures(self):
        merged = scorecard_points(["figure10", "figure13"], ["KM"], SCALE)
        f10 = figure_points("figure10", ["KM"], SCALE)
        f13 = figure_points("figure13", ["KM"], SCALE)
        assert len(merged) < len(f10) + len(f13)
        assert len(merged) == len(set(merged))
