"""Shard-worker loss mid-epoch: kill-and-requeue, then degrade to serial.

The process backend's barrier replies double as heartbeats. These tests
inject deterministic worker faults through the ``shard.window`` hook —
``crash`` is an ``os._exit`` that models SIGKILL/OOM (the parent sees
pipe EOF), ``hang`` is a self-SIGSTOP (heartbeats cease, the supervisor
deadline fires) — and assert the engine's two promises:

* a transient loss is retried with fresh workers and **converges to the
  bit-identical result** a clean run produces;
* a permanent loss (every attempt faulted) **degrades to the serial
  engine** instead of failing the run.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.resilience.supervisor import SupervisorConfig
from repro.shard import ShardPlan, shard_execute
from repro.sm.simulator import simulate
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

SCALE = 0.05
PLAN = ShardPlan(num_shards=2, epoch_cycles=1, backend="process")


def _fixture():
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=2)
    kernel = build_kernel(workload("KM"), SCALE)
    return kernel, cfg, CONFIGS["apres"].build


def test_worker_crash_mid_epoch_retries_and_converges():
    kernel, cfg, engine = _fixture()
    serial = simulate(kernel, cfg, engine)
    faults = FaultPlan(events=[FaultEvent("shard.window", 2, "crash")])
    result, info = shard_execute(
        kernel, cfg, engine, PLAN,
        supervisor=SupervisorConfig(fault_plan=faults))
    # First attempt dies at window 2 (pipe EOF); the requeue re-forks
    # clean workers and the retried attempt is attempt-gated past the
    # fault — the final statistics are the serial ones, bit for bit.
    assert info["attempts"] == 2
    assert not info["degraded"]
    assert len(info["failures"]) == 1 and "lost" in info["failures"][0]
    assert result.stats.as_dict() == serial.stats.as_dict()
    assert result.engine_events == serial.engine_events


def test_worker_hang_detected_by_deadline_and_retried():
    kernel, cfg, engine = _fixture()
    serial = simulate(kernel, cfg, engine)
    faults = FaultPlan(events=[FaultEvent("shard.window", 1, "hang")])
    result, info = shard_execute(
        kernel, cfg, engine, PLAN,
        supervisor=SupervisorConfig(deadline_s=1.0, fault_plan=faults))
    assert info["attempts"] == 2
    assert not info["degraded"]
    assert "deadline" in info["failures"][0]
    assert result.stats.as_dict() == serial.stats.as_dict()


def test_permanently_poisoned_window_degrades_to_serial():
    kernel, cfg, engine = _fixture()
    serial = simulate(kernel, cfg, engine)
    faults = FaultPlan(events=[
        FaultEvent("shard.window", 0, "crash", every_attempt=True)])
    result, info = shard_execute(
        kernel, cfg, engine, PLAN,
        supervisor=SupervisorConfig(max_attempts=2, fault_plan=faults))
    # Every attempt crashes at the first window; past max_attempts the
    # engine falls back to the serial simulator rather than failing.
    assert info["degraded"] is True
    assert info["attempts"] == 2
    assert len(info["failures"]) == 2
    assert result.stats.as_dict() == serial.stats.as_dict()
    assert result.engine_events == serial.engine_events


def test_inproc_backend_never_retries():
    # The in-process backend has no worker processes to lose; a single
    # attempt with no failure machinery engaged is the whole story.
    kernel, cfg, engine = _fixture()
    _, info = shard_execute(
        kernel, cfg, engine, ShardPlan(2, 1),
        supervisor=SupervisorConfig(
            fault_plan=FaultPlan(events=[
                FaultEvent("shard.window", 0, "crash", every_attempt=True)])))
    assert info["attempts"] == 1
    assert not info["degraded"] and info["failures"] == []
