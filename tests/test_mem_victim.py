"""CCWS victim tag array (lost-locality detector)."""

from hypothesis import given, strategies as st

from repro.mem.victim import VictimTagArray


class TestVTA:
    def test_probe_empty_misses(self):
        vta = VictimTagArray()
        assert not vta.probe(0x100)

    def test_probe_after_eviction_hits(self):
        vta = VictimTagArray()
        vta.record_eviction(0x100)
        assert vta.probe(0x100)

    def test_probe_consumes_entry(self):
        vta = VictimTagArray()
        vta.record_eviction(0x100)
        assert vta.probe(0x100)
        assert not vta.probe(0x100)

    def test_lru_replacement(self):
        vta = VictimTagArray(num_sets=1, associativity=2)
        vta.record_eviction(0 * 128)
        vta.record_eviction(1 * 128)
        vta.record_eviction(2 * 128)  # evicts line 0
        assert not vta.probe(0)
        assert vta.probe(1 * 128)
        assert vta.probe(2 * 128)

    def test_rerecord_promotes(self):
        vta = VictimTagArray(num_sets=1, associativity=2)
        vta.record_eviction(0 * 128)
        vta.record_eviction(1 * 128)
        vta.record_eviction(0 * 128)  # promote
        vta.record_eviction(2 * 128)  # evicts 1
        assert vta.probe(0)
        assert not vta.probe(1 * 128)

    def test_occupancy_bounded(self):
        vta = VictimTagArray(num_sets=2, associativity=2)
        for i in range(100):
            vta.record_eviction(i * 128)
        assert vta.occupancy() <= 4


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_property_occupancy_never_exceeds_capacity(evictions):
    vta = VictimTagArray(num_sets=4, associativity=4)
    for tag in evictions:
        vta.record_eviction(tag * 128)
        assert vta.occupancy() <= 16
