"""Unit-level checks of the ablation sweeps (tiny scale: wiring, not numbers)."""

import pytest

from repro.experiments import ablations
from repro.experiments.runner import clear_cache

SCALE = 0.05
APPS = ("KM",)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSAPComponents:
    def test_returns_all_variants(self):
        data = ablations.sap_components(apps=APPS, scale=SCALE)
        assert set(data["KM"]) == {"laws", "laws+group", "laws+group+self"}
        assert all(v > 0 for v in data["KM"].values())


class TestSweeps:
    def test_pt_sweep_keys(self):
        data = ablations.pt_entry_sweep(entries=(1, 10), apps=APPS, scale=SCALE)
        assert set(data) == {1, 10}

    def test_wgt_sweep_keys(self):
        data = ablations.wgt_entry_sweep(entries=(3,), apps=APPS, scale=SCALE)
        assert set(data) == {3}

    def test_self_degree_zero_disables_self_prefetch(self):
        data = ablations.self_degree_sweep(degrees=(0, 2), apps=APPS, scale=SCALE)
        assert set(data) == {0, 2}
        assert all(v > 0 for per_app in data.values() for v in per_app.values())

    def test_l1_sweep_uses_ipc(self):
        data = ablations.l1_size_sweep(sizes_kb=(16, 128), apps=APPS, scale=SCALE)
        assert all(0 < v < 3 for per_app in data.values() for v in per_app.values())

    def test_bandwidth_sweep_monotone_direction(self):
        data = ablations.bandwidth_sweep(service_cycles=(2, 8), apps=APPS, scale=SCALE)
        # Quadrupling service time cannot make the baseline faster.
        assert data[2]["KM"] >= data[8]["KM"] - 1e-9
