"""APRES end-to-end behaviour on controlled kernels."""

from repro.core.apres import build_apres
from repro.isa.address import StridedAddress
from repro.isa.instructions import alu, load
from repro.isa.program import KernelSpec
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import simulate

GB = 1 << 30


def apres_engine():
    pair = build_apres()
    return pair.scheduler, pair.prefetcher


def strided_kernel(iterations=12):
    """Perfect inter-warp stride: SAP's best case."""
    gen = StridedAddress(GB, warp_stride=4096, iter_stride=128,
                         footprint_bytes=256 << 20)
    return KernelSpec("strided", [load(0x10, gen), alu(0x18)], iterations)


def shared_kernel(iterations=12):
    """Warp-invariant, iteration-invariant load: pure reuse, zero stride."""
    gen = StridedAddress(GB, warp_stride=0, iter_stride=0)
    return KernelSpec("shared", [load(0x10, gen), alu(0x18)], iterations)


class TestSAPCoverage:
    def test_strided_kernel_gets_group_prefetches(self, tiny_config):
        result = simulate(strided_kernel(), tiny_config, apres_engine)
        l1 = result.stats.l1
        assert l1.prefetch_issued > 0
        covered = l1.prefetch_useful + l1.prefetch_demand_merged
        assert covered > 0

    def test_shared_kernel_never_prefetches(self, tiny_config):
        # Both strides are zero: every adaptive gate must hold fire
        # (the paper's high-locality class is scheduled, not prefetched).
        result = simulate(shared_kernel(), tiny_config, apres_engine)
        assert result.stats.l1.prefetch_issued == 0

    def test_apres_not_slower_than_laws_alone_on_strided(self, tiny_config):
        laws_only = simulate(
            strided_kernel(), tiny_config,
            lambda: (build_apres().scheduler, NullPrefetcher()),
        )
        apres = simulate(strided_kernel(), tiny_config, apres_engine)
        assert apres.cycles <= laws_only.cycles * 1.05

    def test_engine_events_counted(self, tiny_config):
        result = simulate(strided_kernel(), tiny_config, apres_engine)
        assert result.engine_events > 0


class TestAgainstBaseline:
    def test_apres_completes_same_work(self, tiny_config):
        base = simulate(strided_kernel(), tiny_config,
                        lambda: (LRRScheduler(), NullPrefetcher()))
        apres = simulate(strided_kernel(), tiny_config, apres_engine)
        assert apres.stats.instructions == base.stats.instructions

    def test_apres_deterministic(self, tiny_config):
        a = simulate(strided_kernel(), tiny_config, apres_engine)
        b = simulate(strided_kernel(), tiny_config, apres_engine)
        assert a.cycles == b.cycles
        assert a.stats.l1.prefetch_issued == b.stats.l1.prefetch_issued
