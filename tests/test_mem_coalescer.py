"""Memory request coalescing."""

from hypothesis import given, strategies as st

from repro.mem.coalescer import coalesce

LINE = 128


class TestCoalesce:
    def test_same_line_merges_to_one(self):
        assert coalesce([0, 4, 8, 127], LINE) == [0]

    def test_consecutive_lines(self):
        assert coalesce([0, 128, 256], LINE) == [0, 128, 256]

    def test_alignment(self):
        assert coalesce([130, 140], LINE) == [128]

    def test_fully_divergent(self):
        addrs = [i * 1024 for i in range(32)]
        assert len(coalesce(addrs, LINE)) == 32

    def test_primary_first(self):
        # The lowest lane's segment must come first (SAP's DRQ rule).
        assert coalesce([512, 0, 512], LINE)[0] == 512

    def test_empty(self):
        assert coalesce([], LINE) == []

    def test_straddling_boundary(self):
        assert coalesce([120, 130], LINE) == [0, 128]


@given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=64))
def test_property_all_lines_aligned(addrs):
    for line in coalesce(addrs, LINE):
        assert line % LINE == 0


@given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=64))
def test_property_covers_every_address(addrs):
    lines = set(coalesce(addrs, LINE))
    for a in addrs:
        assert a - (a % LINE) in lines


@given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=64))
def test_property_no_duplicates(addrs):
    lines = coalesce(addrs, LINE)
    assert len(lines) == len(set(lines))


@given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=64))
def test_property_never_more_lines_than_addresses(addrs):
    assert len(coalesce(addrs, LINE)) <= len(addrs)
