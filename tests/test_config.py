"""Configuration validation and Table III defaults."""

import dataclasses

import pytest

from repro.config import APRESConfig, CacheConfig, GPUConfig
from repro.errors import ConfigError


class TestCacheConfig:
    def test_table3_l1_geometry(self):
        cfg = GPUConfig().l1
        assert cfg.size_bytes == 32 * 1024
        assert cfg.associativity == 8
        assert cfg.line_size == 128
        assert cfg.num_mshrs == 64
        assert cfg.num_sets == 32
        assert cfg.num_lines == 256

    def test_table3_l2_geometry(self):
        cfg = GPUConfig().l2
        assert cfg.size_bytes == 768 * 1024
        assert cfg.hit_latency == 200
        assert cfg.num_sets == 768

    def test_size_must_divide_into_ways_and_lines(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, associativity=8)

    def test_non_power_of_two_sets_allowed(self):
        cfg = CacheConfig(size_bytes=768 * 1024, associativity=8)
        assert cfg.num_sets == 768

    def test_num_lines_consistency(self):
        cfg = CacheConfig(size_bytes=16 * 1024, associativity=4)
        assert cfg.num_lines == cfg.num_sets * cfg.associativity


class TestDRAMConfig:
    def test_table3_defaults(self):
        cfg = GPUConfig().dram
        assert cfg.num_partitions == 6
        assert cfg.latency == 440


class TestGPUConfig:
    def test_table3_defaults(self):
        cfg = GPUConfig()
        assert cfg.num_sms == 15
        assert cfg.max_warps_per_sm == 48
        assert cfg.warp_size == 32
        assert cfg.issue_latency == 8

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)

    def test_rejects_zero_warps(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_warps_per_sm=0)

    def test_rejects_zero_issue_latency(self):
        with pytest.raises(ConfigError):
            GPUConfig(issue_latency=0)

    def test_frozen(self):
        cfg = GPUConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_sms = 1  # type: ignore[misc]

    def test_hashable_for_memoisation(self):
        assert hash(GPUConfig()) == hash(GPUConfig())
        assert GPUConfig() == GPUConfig()


class TestScaled:
    def test_scales_dram_service_inversely_with_sms(self):
        full = GPUConfig()
        small = full.scaled(3)
        assert small.num_sms == 3
        assert small.dram.service_cycles == full.dram.service_cycles * 5

    def test_scales_l2_service(self):
        full = GPUConfig()
        small = full.scaled(5)
        assert small.l2.service_cycles == full.l2.service_cycles * 3

    def test_identity_scale(self):
        full = GPUConfig()
        assert full.scaled(15).dram.service_cycles == full.dram.service_cycles

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            GPUConfig().scaled(0)

    def test_latencies_unchanged(self):
        small = GPUConfig().scaled(1)
        assert small.dram.latency == 440
        assert small.l2.hit_latency == 200


class TestWithL1Size:
    def test_figure2_large_cache(self):
        big = GPUConfig().with_l1_size(32 * 1024 * 1024)
        assert big.l1.size_bytes == 32 * 1024 * 1024
        assert big.l1.associativity == GPUConfig().l1.associativity

    def test_other_fields_untouched(self):
        big = GPUConfig().with_l1_size(64 * 1024)
        assert big.l2 == GPUConfig().l2
        assert big.num_sms == 15


class TestAPRESConfig:
    def test_table2_geometry(self):
        cfg = APRESConfig()
        assert cfg.wgt_entries == 3
        assert cfg.pt_entries == 10
        assert cfg.drq_entries == 32
        assert cfg.wq_entries == 48
