"""simlint rules against the known-bad/known-good fixture tree.

Each rule must fire on its bad fixture with an exact finding count (so a
detector regression shows up as a diff, not a silent miss) and stay
silent on the corrected twin. The repo itself must lint clean — that is
the acceptance bar the CI lint job enforces.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import run_lint
from repro.errors import LintError

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "simlint"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def by_rule(result):
    return result.by_rule()


class TestSL001Determinism:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "determinism.py"])
        assert by_rule(result) == {"SL001": 5}
        messages = " | ".join(f.message for f in result.findings)
        assert "set order is hash-dependent" in messages
        assert "key=id" in messages
        assert "id() values are process-specific" in messages
        assert "random.random()" in messages

    def test_dict_views_fire_in_hot_path(self):
        result = run_lint([BAD / "mem" / "dict_views.py"])
        assert by_rule(result) == {"SL001": 3}
        assert all(".items()" in f.message or ".keys()" in f.message
                   or ".values()" in f.message for f in result.findings)

    def test_dict_views_silent_outside_hot_path(self, tmp_path):
        # Same code as the hot fixture, but in a non-hot directory.
        target = tmp_path / "dict_views.py"
        target.write_text((BAD / "mem" / "dict_views.py").read_text())
        result = run_lint([target])
        assert result.clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "determinism.py"]).clean

    def test_good_dict_views_clean_including_suppression(self):
        assert run_lint([GOOD / "mem" / "dict_views.py"]).clean


class TestSL002Picklability:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "mem" / "closures.py"])
        assert by_rule(result) == {"SL002": 3}
        assert all("snapshot() pickling" in f.message for f in result.findings)

    def test_silent_outside_hot_path(self, tmp_path):
        target = tmp_path / "closures.py"
        target.write_text((BAD / "mem" / "closures.py").read_text())
        assert run_lint([target]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "mem" / "closures.py"]).clean


class TestSL003CounterHygiene:
    def test_bad_fixture_fires_both_directions(self):
        result = run_lint([BAD / "stats_flow.py"])
        assert by_rule(result) == {"SL003": 2}
        messages = sorted(f.message for f in result.findings)
        assert any("'phantom_counter' is updated here but not declared" in m
                   for m in messages)
        assert any("'FixtureStats.dead_counter' is declared but never updated" in m
                   for m in messages)

    def test_declarations_alone_report_nothing(self, tmp_path):
        # A declarations-only tree has no update sites, so the
        # never-updated check must stay quiet (see rule docstring).
        target = tmp_path / "decls.py"
        target.write_text(textwrap.dedent("""\
            from dataclasses import dataclass

            @dataclass
            class LonelyStats:
                orphan: int = 0
        """))
        assert run_lint([target]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "stats_flow.py"]).clean


class TestSL003TelemetryEvents:
    def test_bad_fixture_fires_every_drift_mode(self):
        result = run_lint([BAD / "telemetry_events.py"])
        assert by_rule(result) == {"SL003": 5}
        messages = " | ".join(f.message for f in result.findings)
        assert "UnregisteredEvent subclasses TelemetryEvent" in messages
        assert "OrphanEvent is registered but never emitted" in messages
        assert "'wrong_kind' maps to MislabeledEvent whose kind literal" in messages
        assert "'ghost' -> GhostEvent does not resolve" in messages
        assert "emit site constructs PhantomEvent" in messages

    def test_silent_without_a_registry(self, tmp_path):
        # Emit sites alone (e.g. linting sm/ on its own) must not fire:
        # the pass needs EVENT_TYPES in the tree to check against.
        target = tmp_path / "emitters.py"
        target.write_text(textwrap.dedent("""\
            def poke(hub, SomeEvent):
                hub.emit(SomeEvent(cycle=0))
        """))
        assert run_lint([target]).clean

    def test_orphan_check_gated_on_emit_sites(self, tmp_path):
        # A declarations-only tree (registry + classes, no emitters) must
        # not report orphans — the emitters just weren't linted.
        target = tmp_path / "events_only.py"
        target.write_text(textwrap.dedent("""\
            from dataclasses import dataclass
            from typing import ClassVar


            @dataclass
            class TelemetryEvent:
                kind: ClassVar[str] = ""
                cycle: int


            @dataclass
            class QuietEvent(TelemetryEvent):
                kind: ClassVar[str] = "quiet"


            EVENT_TYPES = {"quiet": QuietEvent}
        """))
        assert run_lint([target]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "telemetry_events.py"]).clean


class TestSL004RegistryCompleteness:
    def test_bad_fixture_fires_both_directions(self):
        result = run_lint([BAD / "sched"], rule_codes=["SL004"])
        assert by_rule(result) == {"SL004": 2}
        messages = " | ".join(f.message for f in result.findings)
        assert "PhantomScheduler does not resolve" in messages
        assert "class RogueScheduler subclasses a registrable base" in messages

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "sched"]).clean


class TestSL004IntervalMetrics:
    def test_bad_fixture_fires_all_three(self):
        result = run_lint([BAD / "intervals_registry.py"])
        assert by_rule(result) == {"SL004": 3}
        messages = " | ".join(f.message for f in result.findings)
        assert "repeats key 'ipc'" in messages
        assert "no _metric_uncomputed method" in messages
        assert "_metric_secret has no INTERVAL_METRICS entry" in messages

    def test_duplicate_key_applies_to_any_upper_registry(self, tmp_path):
        target = tmp_path / "dupes.py"
        target.write_text(textwrap.dedent("""\
            LOOKUP = {
                "a": 1,
                "b": 2,
                "a": 3,  # noqa: F601
            }
        """))
        result = run_lint([target])
        assert by_rule(result) == {"SL004": 1}
        assert "repeats key 'a'" in result.findings[0].message

    def test_lowercase_dicts_exempt(self, tmp_path):
        # Plain data dicts are not registries; only UPPER_CASE module
        # constants get the duplicate-key treatment.
        target = tmp_path / "plain.py"
        target.write_text('lookup = {"a": 1, "a": 2}  # noqa: F601\n')
        assert run_lint([target]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "intervals_registry.py"]).clean


class TestSL005FrozenConfig:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "config_mutation.py"])
        assert by_rule(result) == {"SL005": 3}
        assert all("dataclasses.replace" in f.message for f in result.findings)

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "config_mutation.py"]).clean


class TestSL006PaperGolden:
    def test_bad_fixture_fires_every_drift_mode(self):
        result = run_lint([BAD / "experiments"], rule_codes=["SL006"])
        assert by_rule(result) == {"SL006": 6}
        messages = " | ".join(f.message for f in result.findings)
        assert "figure99() has no GOLDEN entry" in messages
        assert "table5() has no GOLDEN entry" in messages
        assert "'figure42' has no matching producer" in messages
        assert "'figure11' has no SCORECARD spec" in messages
        assert "'figure42' has no SCORECARD spec" in messages
        assert "'table7' has no GOLDEN data" in messages

    def test_silent_without_the_module_pair(self, tmp_path):
        # figures.py alone (or paper_data.py alone) must not fire: the
        # rule needs both sides of the contract in the same directory.
        target = tmp_path / "figures.py"
        target.write_text((BAD / "experiments" / "figures.py").read_text())
        assert run_lint([target]).clean

    def test_silent_when_golden_is_computed(self, tmp_path):
        # A GOLDEN built by code is out of structural reach: skip, don't
        # guess (the runtime scorecard covers it).
        (tmp_path / "figures.py").write_text("def figure1():\n    return {}\n")
        (tmp_path / "paper_data.py").write_text(
            "def _build():\n    return {}\n\n\nGOLDEN = _build()\n"
        )
        assert run_lint([tmp_path]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "experiments"]).clean


class TestSL007HotPathSlots:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "sm" / "state.py"])
        assert by_rule(result) == {"SL007": 3}
        messages = " | ".join(f.message for f in result.findings)
        assert "WarpSlot declares no __slots__" in messages
        assert "IssueRecord declares no __slots__" in messages
        assert "Tracker is defined inside a function" in messages

    def test_silent_outside_hot_path(self, tmp_path):
        target = tmp_path / "state.py"
        target.write_text((BAD / "sm" / "state.py").read_text())
        assert run_lint([target]).clean

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "sm" / "state.py"]).clean


class TestSL008RobustIO:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "experiments" / "robust_io.py"])
        assert by_rule(result) == {"SL008": 5}
        messages = " | ".join(f.message for f in result.findings)
        assert "bare 'except:'" in messages
        assert "pass-only handler" in messages
        assert "open(..., 'w')" in messages
        assert "append_line" in messages  # the 'a'-mode fix
        assert "write_text" in messages

    def test_silent_outside_persistence_packages(self, tmp_path):
        target = tmp_path / "robust_io.py"
        target.write_text((BAD / "experiments" / "robust_io.py").read_text())
        assert run_lint([target]).clean

    def test_temp_then_rename_is_exempt(self, tmp_path):
        # The atomic pattern itself must not fire (the good fixture's
        # save_summary), even though it opens with mode "w".
        registry_dir = tmp_path / "registry"
        registry_dir.mkdir()
        target = registry_dir / "writer.py"
        target.write_text(textwrap.dedent("""\
            import json
            import os


            def save(path, payload):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
        """))
        assert run_lint([target]).clean

    def test_good_fixture_clean_including_suppression(self):
        assert run_lint([GOOD / "experiments" / "robust_io.py"]).clean


class TestSL009SharedState:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "sm" / "isolation.py"])
        assert by_rule(result) == {"SL009": 3}
        messages = " | ".join(f.message for f in result.findings)
        assert "ResultHub.total_issued" in messages
        assert "ResultHub.last_core" in messages
        assert "ResultHub.pending" in messages

    def test_findings_anchor_at_write_sites(self):
        result = run_lint([BAD / "sm" / "isolation.py"])
        source = (BAD / "sm" / "isolation.py").read_text().splitlines()
        for finding in result.findings:
            assert "self.hub." in source[finding.line - 1]

    def test_good_fixture_clean_via_boundary_and_waiver(self):
        assert run_lint([GOOD / "sm" / "isolation.py"]).clean

    def test_waiver_is_load_bearing(self, tmp_path):
        # Strip the ignore comment from the good twin: the waived write
        # on the non-boundary DebugProbe must resurface as SL009.
        source = (GOOD / "sm" / "isolation.py").read_text()
        target = tmp_path / "sm"
        target.mkdir()
        (target / "isolation.py").write_text(
            source.replace("  # simlint: ignore[SL009]", "")
        )
        result = run_lint([target])
        assert by_rule(result) == {"SL009": 1}
        assert "DebugProbe.last_seen" in result.findings[0].message

    def test_boundary_annotation_is_load_bearing(self, tmp_path):
        source = (BAD / "sm" / "isolation.py").read_text()
        target = tmp_path / "sm"
        target.mkdir()
        (target / "isolation.py").write_text(
            source.replace(
                "class ResultHub:",
                "class ResultHub:  # simlint: boundary[test channel]",
            )
        )
        assert run_lint([target]).clean


class TestSL010GlobalState:
    def test_bad_fixture_fires(self):
        result = run_lint([BAD / "sched" / "global_state.py"])
        assert by_rule(result) == {"SL010": 3}
        messages = " | ".join(f.message for f in result.findings)
        assert "module-level mutable `_SEEN_WARPS`" in messages
        assert "class-level mutable attribute `QuotaTracker.quotas`" in messages
        assert "mutable default for parameter `batch`" in messages

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "sched" / "global_state.py"]).clean

    def test_silent_outside_hot_packages(self, tmp_path):
        # The same patterns outside HOT_PACKAGES are not SL010's business.
        target = tmp_path / "tools"
        target.mkdir()
        (target / "global_state.py").write_text(
            (BAD / "sched" / "global_state.py").read_text()
        )
        assert run_lint([target]).clean

    def test_cross_module_registry_mutation(self, tmp_path):
        target = tmp_path / "mem"
        target.mkdir()
        (target / "registry.py").write_text("TABLE = {}\n")
        (target / "writer.py").write_text(textwrap.dedent("""\
            from registry import TABLE


            def remember(key, value):
                TABLE[key] = value
        """))
        result = run_lint([target])
        assert by_rule(result) == {"SL010": 1}
        assert "registry.TABLE" in result.findings[0].message


class TestSL011MetricNames:
    def test_bad_fixture_fires_all_three_directions(self):
        result = run_lint([BAD / "metrics_names.py"])
        assert by_rule(result) == {"SL011": 3}
        messages = " | ".join(f.message for f in result.findings)
        assert "'harness.ticks.unknown' is emitted here but not declared" in messages
        assert "declared as a gauge but emitted via .counter()" in messages
        assert "'harness.orphan.declared' is declared in METRICS but never emitted" in messages

    def test_good_fixture_clean(self):
        assert run_lint([GOOD / "metrics_names.py"]).clean

    def test_silent_without_metrics_dict(self, tmp_path):
        # Emit sites alone (no METRICS in the tree) are not checkable.
        target = tmp_path / "emit_only.py"
        target.write_text(textwrap.dedent("""\
            def tick(registry):
                registry.counter("anything.goes").inc()
        """))
        assert run_lint([target]).clean

    def test_orphan_check_needs_an_emit_site(self, tmp_path):
        # Linting the declarations file alone must not report orphans.
        target = tmp_path / "decls_only.py"
        target.write_text(textwrap.dedent("""\
            METRICS = {
                "a.b": ("counter", "help"),
            }
        """))
        assert run_lint([target]).clean

    def test_real_metrics_module_matches_repo_emit_sites(self):
        # The package-wide acceptance property, scoped to this rule: the
        # real METRICS dict and every emit site in src/ agree.
        result = run_lint([Path(repro.__file__).parent], rule_codes=["SL011"])
        assert result.clean, [f.render() for f in result.findings]


class TestIsolationReport:
    def test_good_tree_report_shape(self):
        from repro.analysis.effects import isolation_report_for

        result = run_lint([GOOD / "sm" / "isolation.py"])
        report = isolation_report_for(result.project)
        assert report["tool"] == "simlint-isolation"
        assert report["sm_classes"] == ["IsoCore"]
        assert report["roots"] == ["IsoCore.cycle"]
        assert report["ownership"]["ResultHub"] == "boundary"
        assert report["ownership"]["IsoCore"] == "per_sm"
        boundary = {entry["class"] for entry in report["boundary"]}
        assert boundary == {"ResultHub"}
        assert report["boundary"][0]["statically_exercised"] is True
        assert report["summary"]["unwaived_violations"] == 0
        # The waived DebugProbe write is still visible as a violation row.
        waived = [v for v in report["violations"] if v["waived"]]
        assert len(waived) == 1
        assert waived[0]["target"] == "DebugProbe.last_seen"

    def test_report_is_memoised_on_the_project(self):
        from repro.analysis.effects import analyze_project

        result = run_lint([GOOD / "sm" / "isolation.py"])
        assert analyze_project(result.project) is analyze_project(result.project)


class TestIsolationReconcile:
    """The sanitizer's reconciliation logic over synthetic write sets."""

    @staticmethod
    def _effects():
        result = run_lint([GOOD / "sm" / "isolation.py"])
        from repro.analysis.effects import analyze_project

        return analyze_project(result.project)

    @staticmethod
    def _recorder():
        from repro.integrity.isolation import WriteRecorder

        return WriteRecorder()

    def test_clean_recorder_is_ok(self):
        from repro.analysis.effects.sanitizer import reconcile

        check = reconcile(self._recorder(), self._effects(), {"ResultHub"})
        assert check["ok"] is True
        assert check["stale_boundary"] == ["ResultHub"]

    def test_multi_sm_writes_to_boundary_pass(self):
        from repro.analysis.effects.sanitizer import reconcile

        effects = self._effects()
        recorder = self._recorder()
        hub = type("ResultHub", (), {})()
        for ctx in ("sm0", "sm1"):
            recorder.context = ctx
            recorder.record(hub, "total_issued")
        check = reconcile(recorder, effects, {"ResultHub"})
        assert check["ok"] is True
        assert check["multi_sm_objects"] == 1
        assert check["stale_boundary"] == []

    def test_multi_sm_writes_outside_boundary_fail(self):
        from repro.analysis.effects.sanitizer import reconcile

        effects = self._effects()
        recorder = self._recorder()
        core = type("IsoCore", (), {})()
        for ctx in ("sm0", "sm1"):
            recorder.context = ctx
            recorder.record(core, "issued")
        check = reconcile(recorder, effects, {"ResultHub"})
        assert check["ok"] is False
        assert check["illegal_dynamic"] == ["IsoCore.issued written by sm0, sm1"]

    def test_statically_unknown_write_fails(self):
        from repro.analysis.effects.sanitizer import reconcile

        effects = self._effects()
        recorder = self._recorder()
        ghost = type("Ghost", (), {})()
        recorder.context = "sm0"
        recorder.record(ghost, "counter")
        check = reconcile(recorder, effects, {"ResultHub"})
        assert check["ok"] is False
        assert check["static_missed"] == ["Ghost.counter"]


class TestWriteRecorder:
    def test_instrumentation_attributes_and_restores(self):
        from repro.integrity.isolation import WriteRecorder

        class Probe:
            __slots__ = ("value",)

        original_setattr = Probe.__setattr__
        recorder = WriteRecorder()
        recorder.install([Probe])
        try:
            probe = Probe()
            recorder.context = "sm3"
            probe.value = 7
        finally:
            recorder.uninstall()
        assert probe.value == 7
        assert recorder.writes[("Probe", "value")] == {"sm3"}
        assert Probe.__setattr__ is original_setattr

    def test_creation_context_replay(self):
        from repro.integrity.isolation import WriteRecorder

        recorder = WriteRecorder()

        class Event:
            __slots__ = ("payload", "seen")

            def __init__(self):
                self.payload = 1

            def __call__(self):
                self.seen = recorder.context

        recorder.install([Event])
        try:
            recorder.context = "sm1"
            event = Event()  # created (first written) under sm1
            recorder.context = "epoch"
            event()  # executed from the event drain
        finally:
            recorder.uninstall()
        assert event.seen == "sm1"
        assert recorder.writes[("Event", "seen")] == {"sm1"}


class TestFixtureTrees:
    def test_bad_tree_totals(self):
        result = run_lint([BAD])
        assert by_rule(result) == {
            "SL001": 8,
            "SL002": 3,
            "SL003": 7,
            "SL004": 5,
            "SL005": 3,
            "SL006": 6,
            "SL007": 3,
            "SL008": 5,
            "SL009": 3,
            "SL010": 3,
            "SL011": 3,
        }

    def test_good_tree_is_clean(self):
        result = run_lint([GOOD])
        assert result.clean
        assert result.files_scanned >= 9


class TestEngineBehaviour:
    def test_repo_lints_clean(self):
        """The acceptance bar: the installed repro package has no findings."""
        result = run_lint([Path(repro.__file__).parent])
        assert result.clean, [f.render() for f in result.findings]

    def test_rule_selection_restricts(self):
        result = run_lint([BAD], rule_codes=["SL005"])
        assert set(by_rule(result)) == {"SL005"}

    def test_unknown_rule_code_raises(self):
        with pytest.raises(LintError, match="unknown rule code"):
            run_lint([BAD], rule_codes=["SL999"])

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            run_lint([FIXTURES / "does-not-exist"])

    def test_syntax_error_becomes_sl000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        result = run_lint([target])
        assert [f.rule for f in result.findings] == ["SL000"]

    def test_blanket_suppression(self, tmp_path):
        target = tmp_path / "suppressed.py"
        target.write_text(textwrap.dedent("""\
            def drain(pending: set[int]) -> list[int]:
                return list(pending)  # simlint: ignore
        """))
        assert run_lint([target]).clean

    def test_wrong_code_does_not_suppress(self, tmp_path):
        target = tmp_path / "wrong_code.py"
        target.write_text(textwrap.dedent("""\
            def drain(pending: set[int]) -> list[int]:
                return list(pending)  # simlint: ignore[SL002]
        """))
        result = run_lint([target])
        assert by_rule(result) == {"SL001": 1}

    def test_skip_file(self, tmp_path):
        target = tmp_path / "skipped.py"
        target.write_text(textwrap.dedent("""\
            # simlint: skip-file
            def drain(pending: set[int]) -> list[int]:
                return list(pending)
        """))
        assert run_lint([target]).clean

    def test_decorator_lines_inherit_def_line_suppression(self, tmp_path):
        from repro.analysis.engine import Finding, _is_suppressed, load_module

        target = tmp_path / "decorated.py"
        target.write_text(textwrap.dedent("""\
            @slow_path(retry=3)
            def flush():  # simlint: ignore[SL008]
                return None
        """))
        module = load_module(target)
        on_decorator = Finding(module.display_path, 1, 0, "SL008", "x")
        assert _is_suppressed(on_decorator, module)
        wrong_code = Finding(module.display_path, 1, 0, "SL001", "x")
        assert not _is_suppressed(wrong_code, module)

    def test_parse_cache_hits_and_invalidation(self, tmp_path):
        from repro.analysis.engine import clear_module_cache, load_module

        target = tmp_path / "cached.py"
        target.write_text("VALUE = 1\n")
        stats = {"hits": 0, "misses": 0}
        first = load_module(target, cache_stats=stats)
        second = load_module(target, cache_stats=stats)
        assert stats == {"hits": 1, "misses": 1}
        assert first is second
        # A content change (size differs) must invalidate the entry.
        target.write_text("VALUE = 1000\n")
        third = load_module(target, cache_stats=stats)
        assert stats == {"hits": 1, "misses": 2}
        assert third is not second
        clear_module_cache()
        load_module(target, cache_stats=stats)
        assert stats == {"hits": 1, "misses": 3}

    def test_json_dict_schema(self):
        payload = run_lint([BAD / "config_mutation.py"]).as_json_dict()
        assert payload["tool"] == "simlint"
        assert payload["schema_version"] == 1
        assert payload["summary"]["total"] == 3
        assert payload["summary"]["by_rule"] == {"SL005": 3}
        assert set(payload["rules"]) == {
            "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
            "SL008", "SL009", "SL010", "SL011",
        }
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "message"}
