"""Address generators: determinism, bounds, stride structure."""

from hypothesis import given, strategies as st

from repro.config import WARP_SIZE
from repro.isa.address import (
    BroadcastAddress,
    IndirectAddress,
    IrregularAddress,
    StridedAddress,
)

GB = 1 << 30

warps = st.integers(min_value=0, max_value=200)
iters = st.integers(min_value=0, max_value=500)


class TestBroadcast:
    def test_all_lanes_same_address(self):
        gen = BroadcastAddress(GB, region_bytes=4096)
        addrs = gen.addresses(3, 7)
        assert len(addrs) == WARP_SIZE
        assert len(set(addrs)) == 1

    def test_warp_invariant(self):
        gen = BroadcastAddress(GB, region_bytes=4096)
        assert gen.addresses(0, 5) == gen.addresses(40, 5)

    def test_wraps_inside_region(self):
        gen = BroadcastAddress(GB, region_bytes=256, element_bytes=4)
        for i in range(200):
            addr = gen.primary_address(0, i)
            assert GB <= addr < GB + 256

    def test_advances_per_iteration(self):
        gen = BroadcastAddress(GB, region_bytes=4096, element_bytes=4)
        assert gen.primary_address(0, 1) - gen.primary_address(0, 0) == 4

    @given(warps, iters)
    def test_primary_matches_lane0(self, w, i):
        gen = BroadcastAddress(GB, region_bytes=4096)
        assert gen.primary_address(w, i) == gen.addresses(w, i)[0]


class TestStrided:
    def test_interwarp_stride(self):
        gen = StridedAddress(GB, warp_stride=4352)
        assert gen.primary_address(5, 0) - gen.primary_address(4, 0) == 4352

    def test_iteration_stride(self):
        gen = StridedAddress(GB, warp_stride=0, iter_stride=128)
        assert gen.primary_address(0, 3) - gen.primary_address(0, 2) == 128

    def test_lanes_are_consecutive_elements(self):
        gen = StridedAddress(GB, warp_stride=128, element_bytes=4)
        addrs = gen.addresses(0, 0)
        assert addrs == [GB + 4 * lane for lane in range(WARP_SIZE)]

    def test_one_line_when_elements_are_4_bytes(self):
        gen = StridedAddress(GB, warp_stride=128, element_bytes=4)
        addrs = gen.addresses(7, 3)
        lines = {a // 128 for a in addrs}
        assert len(lines) == 1

    def test_negative_stride_wraps_into_footprint(self):
        fp = 1 << 20
        gen = StridedAddress(GB, warp_stride=-4096, footprint_bytes=fp)
        for w in range(100):
            addr = gen.primary_address(w, 0)
            assert GB <= addr < GB + fp

    def test_wrap_bytes_bounds_iteration_component(self):
        gen = StridedAddress(GB, warp_stride=2048, iter_stride=128, wrap_bytes=1024)
        base = gen.primary_address(3, 0)
        seen = {gen.primary_address(3, i) for i in range(100)}
        assert all(base <= a < base + 1024 for a in seen)
        assert len(seen) == 8  # 1024 / 128 distinct offsets

    def test_wrap_preserves_interwarp_stride(self):
        gen = StridedAddress(GB, warp_stride=4352, iter_stride=128, wrap_bytes=1024)
        for i in range(20):
            delta = gen.primary_address(8, i) - gen.primary_address(7, i)
            assert delta == 4352

    @given(warps, iters)
    def test_deterministic(self, w, i):
        gen = StridedAddress(GB, warp_stride=512, iter_stride=96)
        assert gen.addresses(w, i) == gen.addresses(w, i)

    @given(warps, iters)
    def test_inside_footprint(self, w, i):
        fp = 1 << 22
        gen = StridedAddress(GB, warp_stride=100_000, iter_stride=999, footprint_bytes=fp)
        for a in gen.addresses(w, i):
            assert GB <= a < GB + fp + 4 * WARP_SIZE


class TestIrregular:
    def test_lane_binning_limits_lines(self):
        gen = IrregularAddress(GB, footprint_bytes=1 << 20, lines_per_warp=2)
        addrs = gen.addresses(0, 0)
        lines = {a // 128 for a in addrs}
        assert len(lines) <= 2

    def test_hot_accesses_fall_in_hot_region(self):
        gen = IrregularAddress(GB, footprint_bytes=1 << 24, hot_bytes=4096,
                               hot_fraction=1.0)
        for w in range(16):
            for i in range(16):
                for a in gen.addresses(w, i):
                    assert GB <= a < GB + 4096

    def test_cold_accesses_span_footprint(self):
        gen = IrregularAddress(GB, footprint_bytes=1 << 24, hot_fraction=0.0)
        spread = {a for w in range(8) for i in range(8) for a in gen.addresses(w, i)}
        assert max(spread) - min(spread) > (1 << 20)

    def test_private_blocks_stay_per_warp(self):
        gen = IrregularAddress(GB, footprint_bytes=1 << 24,
                               private_block_bytes=1024, hot_fraction=1.0)
        for w in range(8):
            lo = GB + w * 1024
            for i in range(16):
                for a in gen.addresses(w, i):
                    assert lo <= a < lo + 1024

    def test_seed_changes_stream(self):
        a = IrregularAddress(GB, footprint_bytes=1 << 24, seed=1)
        b = IrregularAddress(GB, footprint_bytes=1 << 24, seed=2)
        assert a.addresses(0, 0) != b.addresses(0, 0)

    @given(warps, iters)
    def test_deterministic(self, w, i):
        gen = IrregularAddress(GB, footprint_bytes=1 << 24, seed=7)
        assert gen.addresses(w, i) == gen.addresses(w, i)


class TestIndirect:
    def test_jitter_bounded_by_window(self):
        gen = IndirectAddress(GB, warp_stride=512, window_bytes=1024,
                              footprint_bytes=1 << 24)
        clean = StridedAddress(GB, warp_stride=512, footprint_bytes=1 << 24)
        for w in range(32):
            delta = abs(gen.primary_address(w, 0) - clean.primary_address(w, 0))
            assert delta <= 1024

    def test_dominant_stride_survives(self):
        gen = IndirectAddress(GB, warp_stride=512, window_bytes=64,
                              footprint_bytes=1 << 24)
        deltas = [
            gen.primary_address(w + 1, 0) - gen.primary_address(w, 0)
            for w in range(40)
        ]
        near = [d for d in deltas if abs(d - 512) <= 128]
        assert len(near) > 30

    @given(warps, iters)
    def test_deterministic(self, w, i):
        gen = IndirectAddress(GB, warp_stride=512, footprint_bytes=1 << 24, seed=3)
        assert gen.addresses(w, i) == gen.addresses(w, i)
