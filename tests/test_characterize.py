"""Per-load characterisation (Table I methodology)."""

from repro.characterize.loads import LoadProfiler
from repro.mem.request import LoadAccess


def feed(profiler, warp, pc, addr, hits, sm=0, cycle=0):
    lines = tuple(addr - addr % 128 + i * 128 for i in range(len(hits)))
    access = LoadAccess(sm, warp, pc, addr, lines, hits[0], cycle)
    profiler.observe(access, list(hits))


class TestPercentLoad:
    def test_share_of_references(self):
        p = LoadProfiler()
        for w in range(3):
            feed(p, w, 0x10, w * 1024, [False])
        feed(p, 0, 0x20, 0, [False])
        rows = {r.pc: r for r in p.rows()}
        assert rows[0x10].pct_load == 0.75
        assert rows[0x20].pct_load == 0.25

    def test_rows_sorted_by_share(self):
        p = LoadProfiler()
        feed(p, 0, 0x10, 0, [False])
        for w in range(3):
            feed(p, w, 0x20, w * 1024, [False])
        rows = p.rows()
        assert rows[0].pc == 0x20

    def test_top_limits_rows(self):
        p = LoadProfiler()
        for pc in (0x10, 0x20, 0x30):
            feed(p, 0, pc, 0, [False])
        assert len(p.rows(top=2)) == 2


class TestLinesPerRef:
    def test_full_reuse(self):
        p = LoadProfiler()
        for w in range(10):
            feed(p, w, 0x10, 4096, [False])
        rows = p.rows()
        assert rows[0].lines_per_ref == 0.1

    def test_no_reuse(self):
        p = LoadProfiler()
        for w in range(10):
            feed(p, w, 0x10, w * 4096, [False])
        assert p.rows()[0].lines_per_ref == 1.0


class TestMissRate:
    def test_counts_per_line_outcomes(self):
        p = LoadProfiler()
        feed(p, 0, 0x10, 0, [False, True])
        feed(p, 1, 0x10, 4096, [True, True])
        assert p.rows()[0].miss_rate == 0.25


class TestStride:
    def test_warp_normalised_stride(self):
        p = LoadProfiler()
        for w in range(6):
            feed(p, w, 0x10, w * 4352, [False])
        row = p.rows()[0]
        assert row.top_stride == 4352
        assert row.pct_stride == 1.0

    def test_skipping_warps_still_normalises(self):
        p = LoadProfiler()
        for w in (0, 2, 5):
            feed(p, w, 0x10, w * 1000, [False])
        assert p.rows()[0].top_stride == 1000

    def test_mixed_strides_report_mode(self):
        p = LoadProfiler()
        addrs = [0, 100, 200, 300, 5000]
        for w, a in enumerate(addrs):
            feed(p, w, 0x10, a, [False])
        row = p.rows()[0]
        assert row.top_stride == 100
        assert 0.7 < row.pct_stride < 0.8

    def test_per_sm_streams_do_not_mix(self):
        p = LoadProfiler()
        feed(p, 0, 0x10, 0, [False], sm=0)
        feed(p, 0, 0x10, 10_000, [False], sm=1)
        feed(p, 1, 0x10, 500, [False], sm=0)
        assert p.rows()[0].top_stride == 500

    def test_formatted_row(self):
        p = LoadProfiler()
        for w in range(3):
            feed(p, w, 0x110, w * 128, [False])
        text = p.rows()[0].formatted()
        assert "0x110" in text
