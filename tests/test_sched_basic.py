"""LRR, GTO, two-level and PA schedulers, plus the registry."""

import pytest

from repro.sched.base import IssueCandidate
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LRRScheduler
from repro.sched.pa import PAScheduler
from repro.sched.registry import SCHEDULERS, make_scheduler
from repro.sched.twolevel import TwoLevelScheduler


def cands(*warp_ids, mem=False):
    return [IssueCandidate(w, mem) for w in warp_ids]


class TestLRR:
    def test_rotates_through_ready_warps(self):
        s = LRRScheduler()
        s.reset(4)
        picks = [s.select(cands(0, 1, 2, 3), t) for t in range(4)]
        assert picks == [0, 1, 2, 3]

    def test_wraps_around(self):
        s = LRRScheduler()
        s.reset(4)
        for t in range(4):
            s.select(cands(0, 1, 2, 3), t)
        assert s.select(cands(0, 1, 2, 3), 4) == 0

    def test_skips_unready(self):
        s = LRRScheduler()
        s.reset(4)
        assert s.select(cands(2, 3), 0) == 2
        assert s.select(cands(1, 3), 1) == 3

    def test_empty_returns_none(self):
        s = LRRScheduler()
        s.reset(4)
        assert s.select([], 0) is None

    def test_fairness_over_window(self):
        s = LRRScheduler()
        s.reset(4)
        counts = {w: 0 for w in range(4)}
        for t in range(40):
            counts[s.select(cands(0, 1, 2, 3), t)] += 1
        assert all(c == 10 for c in counts.values())


class TestGTO:
    def test_greedy_keeps_current(self):
        s = GTOScheduler()
        s.reset(4)
        assert s.select(cands(1, 2), 0) == 1
        assert s.select(cands(1, 2), 1) == 1

    def test_falls_back_to_oldest(self):
        s = GTOScheduler()
        s.reset(4)
        s.select(cands(2), 0)
        assert s.select(cands(1, 3), 1) == 1

    def test_switches_when_current_stalls_then_sticks(self):
        s = GTOScheduler()
        s.reset(4)
        s.select(cands(3), 0)
        assert s.select(cands(1, 2), 1) == 1
        assert s.select(cands(1, 2, 3), 2) == 1  # greedy on the new current

    def test_finished_warp_forgotten(self):
        s = GTOScheduler()
        s.reset(4)
        s.select(cands(0), 0)
        s.notify_warp_finished(0)
        assert s.select(cands(1, 2), 1) == 1


class TestTwoLevel:
    def test_stays_in_active_group(self):
        s = TwoLevelScheduler(group_size=2)
        s.reset(4)  # groups: [0,1], [2,3]
        picks = [s.select(cands(0, 1, 2, 3), t) for t in range(4)]
        assert set(picks[:2]) == {0, 1}

    def test_switches_group_when_active_stalled(self):
        s = TwoLevelScheduler(group_size=2)
        s.reset(4)
        assert s.select(cands(2, 3), 0) in (2, 3)

    def test_group_of_contiguous(self):
        s = TwoLevelScheduler(group_size=2)
        s.reset(6)
        assert s.group_of(0) == 0
        assert s.group_of(3) == 1
        assert s.group_of(5) == 2

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(group_size=0)


class TestPA:
    def test_interleaved_membership(self):
        s = PAScheduler(group_size=2)
        s.reset(6)  # 3 groups, interleaved: warp w in group w % 3
        assert s.group_of(0) == 0
        assert s.group_of(1) == 1
        assert s.group_of(3) == 0
        assert s.group_of(5) == 2

    def test_selects_from_ready(self):
        s = PAScheduler(group_size=4)
        s.reset(8)
        assert s.select(cands(5, 6), 0) in (5, 6)


class TestRegistry:
    def test_all_names_construct(self):
        for name in SCHEDULERS:
            sched = make_scheduler(name)
            sched.reset(8)
            assert sched.select(cands(0, 1), 0) in (0, 1)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("nope")

    def test_expected_members(self):
        assert set(SCHEDULERS) == {
            "lrr", "gto", "twolevel", "ccws", "mascar", "pa", "cawa"
        }
