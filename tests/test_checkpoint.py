"""Checkpoint/resume: interrupted runs must continue bit-identically."""

import pickle

import pytest

from conftest import make_config, mixed_kernel, streaming_kernel
from repro.errors import CheckpointError, SimulationError
from repro.experiments.configs import CONFIGS
from repro.integrity.checkpoint import load_checkpoint, save_checkpoint
from repro.sm.simulator import GPUSimulator


ENGINES = ["base", "ccws+str", "apres"]


def build(config_name, kernel, cfg):
    return GPUSimulator(kernel, cfg, CONFIGS[config_name].build)


class TestRoundTrip:
    @pytest.mark.parametrize("config_name", ENGINES)
    def test_snapshot_mid_run_resumes_bit_identically(self, config_name):
        cfg = make_config(num_sms=2)
        reference = build(config_name, mixed_kernel(20), cfg).run()

        sim = build(config_name, mixed_kernel(20), cfg)
        assert not sim.step_until(reference.cycles // 2)
        restored = GPUSimulator.restore(sim.snapshot())
        resumed = restored.run()

        assert resumed.stats == reference.stats
        assert resumed.engine_events == reference.engine_events
        assert resumed.cycles == reference.cycles

    def test_snapshot_at_many_cut_points(self):
        """The cut cycle must never matter, including mid-burst cuts."""
        cfg = make_config()
        reference = build("apres", streaming_kernel(10), cfg).run()
        for fraction in (0.1, 0.33, 0.77, 0.95):
            sim = build("apres", streaming_kernel(10), cfg)
            sim.step_until(int(reference.cycles * fraction))
            resumed = GPUSimulator.restore(sim.snapshot()).run()
            assert resumed.stats == reference.stats, fraction

    def test_double_restore_from_one_snapshot(self):
        """A snapshot is a value: restoring twice gives two equal runs."""
        cfg = make_config()
        sim = build("base", mixed_kernel(12), cfg)
        sim.step_until(100)
        blob = sim.snapshot()
        first = GPUSimulator.restore(blob).run()
        second = GPUSimulator.restore(blob).run()
        assert first.stats == second.stats

    def test_snapshot_of_finished_run_replays_result(self):
        cfg = make_config()
        sim = build("base", mixed_kernel(6), cfg)
        reference = sim.run()
        restored = GPUSimulator.restore(sim.snapshot())
        assert restored.finished
        assert restored.result().stats == reference.stats


class TestCheckpointFiles:
    def test_periodic_checkpointing_and_file_resume(self, tmp_path):
        cfg = make_config(num_sms=2)
        reference = build("apres", mixed_kernel(20), cfg).run()

        path = tmp_path / "sim.ckpt"
        build("apres", mixed_kernel(20), cfg).run(
            checkpoint_path=str(path), checkpoint_every=200
        )
        assert path.exists(), "periodic checkpoint was never written"
        # Simulate the crash: continue from the last on-disk snapshot.
        restored = load_checkpoint(str(path))
        assert not restored.finished
        assert restored.run().stats == reference.stats

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "sim.ckpt"
        sim = build("base", mixed_kernel(6), make_config())
        sim.step_until(50)
        save_checkpoint(sim, str(path))
        assert not path.with_suffix(".ckpt.tmp").exists()
        assert load_checkpoint(str(path)).current_cycle == sim.current_cycle

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        sim = build("base", mixed_kernel(6), make_config())
        save_checkpoint(sim, str(path))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(str(path))

    def test_unpicklable_observer_raises_checkpoint_error(self):
        cfg = make_config()
        unpicklable = lambda access, hits: None  # noqa: E731 - the point
        sim = GPUSimulator(
            mixed_kernel(6), cfg, CONFIGS["base"].build,
            load_observers=[unpicklable],
        )
        sim.step_until(50)
        with pytest.raises(CheckpointError, match="cannot serialise"):
            sim.snapshot()


class TestResultGate:
    def test_result_requires_completion(self):
        sim = build("base", mixed_kernel(12), make_config())
        sim.step_until(10)
        with pytest.raises(SimulationError, match="still running"):
            sim.result()
