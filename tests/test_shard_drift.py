"""Relaxed-mode (``epoch_cycles > 1``) drift: measured, bounded, reported.

Relaxed epochs fast-forward each shard E cycles between barriers, so
tick-sensitive counters may drift from serial. The contract is not
"identical" but "measured and inside the same tolerance band the
registry diff gate (``repro diff``, rtol 5%) applies to scorecards" —
with the drift reported honestly through the info dict.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.registry.diffing import DEFAULT_RTOL, diff_metrics
from repro.registry.records import flatten_metrics
from repro.shard import DEFAULT_EPOCH_CYCLES, ShardPlan, shard_execute
from repro.sm.simulator import simulate
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

SCALE = 0.05


def _run_pair(workload_abbr: str, config_name: str, epoch_cycles: int,
              shards: int = 2, num_sms: int = 2):
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=num_sms)
    kernel = build_kernel(workload(workload_abbr), SCALE)
    engine = CONFIGS[config_name].build
    serial = simulate(kernel, cfg, engine)
    sharded, info = shard_execute(
        kernel, cfg, engine, ShardPlan(shards, epoch_cycles))
    return serial, sharded, info


def _ipc_drift_pct(serial, sharded) -> float:
    return abs(sharded.stats.ipc - serial.stats.ipc) / serial.stats.ipc * 100


def test_default_epoch_ipc_drift_is_negligible():
    # The default epoch (64) sits inside the no-clamp window: every fill
    # computed at a barrier lands after the barrier that delivers it, so
    # on the smoke workloads the relaxed engine still tracks serial IPC
    # to well under the 5% scorecard gate.
    for workload_abbr in ("BFS", "KM"):
        serial, sharded, info = _run_pair(
            workload_abbr, "apres", DEFAULT_EPOCH_CYCLES)
        assert info["bit_exact"] is False
        assert _ipc_drift_pct(serial, sharded) < 0.5
        assert info["clamped_fills"] == 0
        assert info["max_clamp_cycles"] == 0


def test_default_epoch_full_counter_diff_within_scorecard_tolerance():
    serial, sharded, _ = _run_pair("KM", "apres", DEFAULT_EPOCH_CYCLES)
    report = diff_metrics(
        flatten_metrics(serial.stats.as_dict()),
        flatten_metrics(sharded.stats.as_dict()),
        rtol=DEFAULT_RTOL,
    )
    bad = [row.key for row in report.rows if not row.ok]
    assert not bad, f"counters outside {DEFAULT_RTOL:.0%} band: {bad}"


def test_large_epoch_drift_is_measured_and_reported():
    # A deliberately coarse epoch: fills computed at a barrier would land
    # *before* it, so the engine clamps them to the next window and says
    # so instead of reordering time. At E=512 on this workload the clamp
    # path fires yet drift stays in single digits; a blow-up here means
    # the barrier protocol broke, not just drifted.
    serial, sharded, info = _run_pair("KM", "apres", epoch_cycles=512)
    assert info["epoch_cycles"] == 512
    assert info["clamped_fills"] > 0
    assert info["max_clamp_cycles"] > 0
    assert _ipc_drift_pct(serial, sharded) < 10.0
    # Total executed work is epoch-invariant; only timing drifts.
    assert sharded.stats.instructions == serial.stats.instructions


def test_relaxed_info_reports_window_accounting():
    _, sharded, info = _run_pair("BFS", "apres", DEFAULT_EPOCH_CYCLES)
    assert info["shards"] == 2
    # The run spans many epochs, and the window count is the right order
    # of magnitude for the measured cycle count (the tail drains past the
    # final barrier, so this is a sanity band, not an exact identity).
    assert info["windows_run"] * DEFAULT_EPOCH_CYCLES >= sharded.stats.cycles // 2
    assert info["attempts"] == 1 and not info["degraded"]
    assert info["failures"] == []
