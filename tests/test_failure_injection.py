"""Failure injection: the simulator must stay correct under hostile
components and degenerate configurations."""

import dataclasses

import pytest

from conftest import make_config, mixed_kernel, streaming_kernel
from repro.config import CacheConfig, DRAMConfig
from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import simulate

GB = 1 << 30


class WildPrefetcher(Prefetcher):
    """Prefetches garbage addresses on every load."""

    name = "wild"

    def __init__(self, burst: int = 8):
        super().__init__()
        self._burst = burst
        self._n = 0

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        self._n += 1
        base = (self._n * 0x9E3779B9) % (1 << 40)
        return [PrefetchCandidate(base + i * 131, target_warp=i % 4)
                for i in range(self._burst)]


class StormPrefetcher(Prefetcher):
    """Prefetches the demanded line itself plus duplicates (all droppable)."""

    name = "storm"

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        return [PrefetchCandidate(access.primary_addr)] * 16


class AdversarialScheduler(LRRScheduler):
    """Always picks the highest warp id (worst-case fairness)."""

    def select(self, candidates, cycle):
        if not candidates:
            return None
        return max(c.warp_id for c in candidates)


class TestHostilePrefetchers:
    def test_wild_prefetcher_cannot_break_execution(self, tiny_config):
        kernel = mixed_kernel(6)
        clean = simulate(kernel, tiny_config, lambda: (LRRScheduler(), NullPrefetcher()))
        wild = simulate(kernel, tiny_config, lambda: (LRRScheduler(), WildPrefetcher()))
        assert wild.stats.instructions == clean.stats.instructions
        # Garbage prefetches never satisfy demands...
        assert wild.stats.l1.prefetch_useful == 0
        # ...and the counter algebra still holds.
        l1 = wild.stats.l1
        assert l1.accesses == l1.hits + l1.misses

    def test_wild_prefetches_are_throttled_by_mshr_guard(self, tiny_config):
        kernel = streaming_kernel(iterations=6)
        wild = simulate(kernel, tiny_config, lambda: (LRRScheduler(), WildPrefetcher(burst=32)))
        l1 = wild.stats.l1
        assert l1.prefetch_dropped > 0  # guard engaged

    def test_storm_of_duplicate_prefetches_is_dropped(self, tiny_config):
        kernel = streaming_kernel(iterations=5)
        storm = simulate(kernel, tiny_config, lambda: (LRRScheduler(), StormPrefetcher()))
        l1 = storm.stats.l1
        assert l1.prefetch_issued == 0  # line is always already in flight
        assert l1.prefetch_dropped > 0


class TestHostileSchedulers:
    def test_adversarial_order_still_completes(self, tiny_config):
        kernel = mixed_kernel(5)
        result = simulate(kernel, tiny_config,
                          lambda: (AdversarialScheduler(), NullPrefetcher()))
        assert result.stats.instructions == kernel.instructions_per_warp * 8

    def test_invalid_selection_is_an_error(self, tiny_config):
        class Liar(LRRScheduler):
            def select(self, candidates, cycle):
                return 7  # may not be ready

        kernel = mixed_kernel(2)
        # Selecting a non-candidate warp corrupts state; the simulator
        # surfaces it as an exception rather than silently mis-executing.
        with pytest.raises(Exception):
            simulate(kernel, make_config(max_warps=2), lambda: (Liar(), NullPrefetcher()))


class TestDegenerateConfigurations:
    def test_single_mshr(self):
        cfg = make_config(max_warps=4, mshrs=1)
        result = simulate(streaming_kernel(iterations=4), cfg,
                          lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.l1.reservation_fails > 0
        assert result.stats.instructions == 4 * 3 * 4

    def test_one_line_cache(self):
        cfg = make_config(max_warps=2, l1_bytes=512, mshrs=2)
        cfg = dataclasses.replace(
            cfg, l1=CacheConfig(size_bytes=128, associativity=1, num_mshrs=2)
        )
        result = simulate(mixed_kernel(3), cfg,
                          lambda: (LRRScheduler(), NullPrefetcher()))
        l1 = result.stats.l1
        assert l1.accesses == l1.hits + l1.misses

    def test_glacial_dram(self):
        cfg = make_config(max_warps=2)
        cfg = dataclasses.replace(
            cfg, dram=DRAMConfig(num_partitions=1, latency=5000, service_cycles=50)
        )
        result = simulate(streaming_kernel(iterations=2), cfg,
                          lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.memory.avg_demand_latency > 5000

    def test_single_warp_single_sm(self):
        cfg = make_config(num_sms=1, max_warps=1)
        result = simulate(mixed_kernel(3), cfg,
                          lambda: (LRRScheduler(), NullPrefetcher()))
        assert result.stats.instructions == mixed_kernel(3).instructions_per_warp
