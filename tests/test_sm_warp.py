"""Warp context state machine."""

from repro.isa.address import BroadcastAddress
from repro.isa.instructions import alu, load
from repro.isa.program import KernelSpec
from repro.sm.warp import WarpContext

GEN = BroadcastAddress(1 << 30, region_bytes=1024)


def kernel(iterations=2, waves=1):
    return KernelSpec("k", [load(0x10, GEN), alu(0x18)], iterations, waves=waves)


class TestAdvance:
    def test_walks_body_and_iterations(self):
        w = WarpContext(0, 0, kernel(iterations=2))
        assert w.current_instr.pc == 0x10
        w.advance()
        assert w.current_instr.pc == 0x18
        w.advance()
        assert w.iteration == 1
        assert w.current_instr.pc == 0x10

    def test_finishes_after_last_iteration(self):
        w = WarpContext(0, 0, kernel(iterations=1))
        w.advance()
        w.advance()
        assert w.finished

    def test_wave_refill_updates_global_id(self):
        w = WarpContext(2, 10, kernel(iterations=1, waves=2), wave_stride=100)
        w.advance()
        w.advance()
        assert not w.finished
        assert w.global_id == 110
        assert w.iteration == 0
        w.advance()
        w.advance()
        assert w.finished

    def test_same_data_waves_keep_global_id(self):
        w = WarpContext(2, 10, kernel(iterations=1, waves=2), wave_stride=0)
        w.advance()
        w.advance()
        assert w.global_id == 10


class TestReadiness:
    def test_ready_initially(self):
        w = WarpContext(0, 0, kernel())
        assert w.is_ready(0)

    def test_not_ready_before_ready_at(self):
        w = WarpContext(0, 0, kernel())
        w.ready_at = 10
        assert not w.is_ready(9)
        assert w.is_ready(10)

    def test_not_ready_with_outstanding_memory(self):
        w = WarpContext(0, 0, kernel())
        w.outstanding = 1
        assert not w.is_ready(100)

    def test_finished_never_ready(self):
        w = WarpContext(0, 0, kernel(iterations=1))
        w.advance()
        w.advance()
        assert not w.is_ready(1000)
