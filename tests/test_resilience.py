"""Fault injection, the supervised pool, and self-healing persistence.

The contract under test is the same bit-identity bar as the plain
parallel engine, now under injected faults: a sweep that survives worker
crashes, SIGSTOP hangs, torn appends and corrupted registry memos must
still produce output byte-identical to an undisturbed serial run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import make_config
from repro.experiments import runner
from repro.experiments.sweep import ResultsStore, run_sweep, sweep_points
from repro.registry.store import RegistryStore
from repro.resilience import faults
from repro.resilience.atomic import append_line
from repro.resilience.chaos import format_chaos, run_chaos
from repro.resilience.faults import FaultEvent, FaultPlan, corrupt_last_record
from repro.resilience.supervisor import SupervisorConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

APPS = ["BFS", "KM"]
SCALE = 0.05


def tiny_points(apps=APPS, configs=("base",), scales=(SCALE,)):
    return sweep_points(apps, configs, scales)


@pytest.fixture(autouse=True)
def fresh_run_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


@pytest.fixture(autouse=True)
def disarmed():
    """No test may leak an armed fault plan into the next one."""
    faults.disarm()
    yield
    faults.disarm()


def fast_supervisor(**overrides):
    defaults = dict(deadline_s=2.0, heartbeat_interval_s=0.1,
                    backoff_base_s=0.05, backoff_cap_s=0.2)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestAtomicAppend:
    def test_torn_write_heals_to_the_full_line(self, tmp_path):
        target = tmp_path / "store.jsonl"
        append_line(target, "first")  # unarmed: consumes no occurrence
        faults.arm(FaultPlan(events=[
            FaultEvent("append.write", 0, "torn-write")]))
        append_line(target, "second")
        assert target.read_text() == "first\nsecond\n"

    def test_disk_full_and_fsync_failure_heal(self, tmp_path):
        target = tmp_path / "store.jsonl"
        faults.arm(FaultPlan(events=[
            FaultEvent("append.write", 0, "disk-full"),
            FaultEvent("append.fsync", 1, "fsync-fail"),
        ]))
        append_line(target, "a")
        append_line(target, "b")
        assert target.read_text() == "a\nb\n"

    def test_exhausted_retries_leave_the_file_untouched(self, tmp_path):
        target = tmp_path / "store.jsonl"
        append_line(target, "keep")
        before = target.read_bytes()
        # Occurrence counters only tick while a plan is armed, so the
        # doomed append's three attempts are occurrences 0, 1 and 2.
        faults.arm(FaultPlan(events=[
            FaultEvent("append.write", occ, "disk-full")
            for occ in (0, 1, 2)
        ]))
        with pytest.raises(OSError):
            append_line(target, "doomed", retries=3)
        assert target.read_bytes() == before

    def test_sigkilled_writer_never_tears_a_line(self, tmp_path):
        """Satellite regression: SIGKILL a process mid-append loop; every
        persisted line must still parse (the single-syscall O_APPEND
        write is all-or-nothing)."""
        target = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "import json, itertools, sys\n"
            "from repro.resilience.atomic import append_line\n"
            "for i in itertools.count():\n"
            "    append_line(sys.argv[1], json.dumps("
            "{'i': i, 'pad': 'x' * 512}))\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", script, str(target)],
                                env=env, cwd=REPO_ROOT)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if target.exists() and target.stat().st_size > 4096:
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        lines = target.read_text().splitlines()
        assert len(lines) >= 2
        for line in lines:
            json.loads(line)  # no torn tail, no interleaving


class TestFaultPlan:
    def test_build_is_deterministic_in_the_seed(self):
        kinds = ["crash", "hang", "torn-write", "corrupt-record"]
        a = FaultPlan.build(kinds, points=7, seed=3)
        b = FaultPlan.build(kinds, points=7, seed=3)
        assert a.events == b.events
        assert [e.kind for e in a.events] == kinds

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.build(["segfault"], points=2)

    def test_worker_faults_fire_on_first_attempt_only(self):
        plan = FaultPlan(events=[FaultEvent("worker.point", 0, "crash")])
        assert plan.trip("worker.point", 0, attempt=1) == "crash"
        assert plan.trip("worker.point", 0, attempt=1) is None  # consumed
        plan = FaultPlan(events=[FaultEvent("worker.point", 0, "crash")])
        assert plan.trip("worker.point", 0, attempt=2) is None  # requeue runs clean

    def test_every_attempt_faults_never_converge(self):
        plan = FaultPlan(events=[
            FaultEvent("worker.point", 0, "crash", every_attempt=True)])
        for attempt in (1, 2, 3):
            assert plan.trip("worker.point", 0, attempt) == "crash"


class TestSupervisedPoolRecovery:
    def test_worker_crash_is_requeued_byte_identically(self, tmp_path, capsys):
        cfg = make_config()
        serial = tmp_path / "serial.jsonl"
        run_sweep(tiny_points(), str(serial), gpu_config=cfg)

        faults.arm(FaultPlan(events=[FaultEvent("worker.point", 0, "crash")]))
        chaotic = tmp_path / "chaotic.jsonl"
        summary = run_sweep(tiny_points(), str(chaotic), gpu_config=cfg,
                            jobs=2, supervisor=fast_supervisor())
        assert summary.failed == 0
        assert summary.simulated == len(tiny_points())
        assert chaotic.read_bytes() == serial.read_bytes()
        err = capsys.readouterr().err
        assert "died on point" in err
        assert "requeueing point" in err

    def test_sigstop_hang_is_escalated_byte_identically(self, tmp_path, capsys):
        """Satellite: a worker SIGSTOPs itself under --jobs 2; the
        heartbeat deadline kills it and the requeued attempt converges."""
        cfg = make_config()
        serial = tmp_path / "serial.jsonl"
        run_sweep(tiny_points(), str(serial), gpu_config=cfg)

        faults.arm(FaultPlan(events=[FaultEvent("worker.point", 1, "hang")]))
        chaotic = tmp_path / "chaotic.jsonl"
        summary = run_sweep(
            tiny_points(), str(chaotic), gpu_config=cfg, jobs=2,
            supervisor=fast_supervisor(deadline_s=1.0))
        assert summary.failed == 0
        assert chaotic.read_bytes() == serial.read_bytes()
        err = capsys.readouterr().err
        assert "missed its heartbeat deadline" in err

    def test_poisoned_point_is_quarantined(self, tmp_path):
        cfg = make_config()
        faults.arm(FaultPlan(events=[
            FaultEvent("worker.point", 0, "crash", every_attempt=True)]))
        out = tmp_path / "poisoned.jsonl"
        summary = run_sweep(
            tiny_points(), str(out), gpu_config=cfg, jobs=2,
            supervisor=fast_supervisor(max_attempts=2))
        assert summary.failed == 1
        assert summary.quarantined_keys == summary.failed_keys
        records = ResultsStore(str(out)).load()
        failed = [r for r in records.values() if r["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["quarantined"] is True
        assert failed[0]["error"] == "PointQuarantined"
        assert failed[0]["details"]["kind"] == "worker-crash"
        assert failed[0]["attempts"] == 2

    def test_resume_skips_quarantined_then_retry_failed_heals(self, tmp_path):
        cfg = make_config()
        reference = tmp_path / "ref.jsonl"
        run_sweep(tiny_points(), str(reference), gpu_config=cfg)

        faults.arm(FaultPlan(events=[
            FaultEvent("worker.point", 0, "crash", every_attempt=True)]))
        out = tmp_path / "quarantined.jsonl"
        run_sweep(tiny_points(), str(out), gpu_config=cfg, jobs=2,
                  supervisor=fast_supervisor(max_attempts=2))
        faults.disarm()

        resumed = run_sweep(tiny_points(), str(out), gpu_config=cfg,
                            resume_from=str(out))
        assert resumed.simulated == 0
        assert resumed.quarantined_skipped == 1
        assert len(resumed.quarantined_keys) == 1

        healed = run_sweep(tiny_points(), str(out), gpu_config=cfg,
                           resume_from=str(out), retry_failed=True)
        assert healed.simulated == 1
        assert healed.quarantined_skipped == 0
        assert ResultsStore(str(out)).load() == \
            ResultsStore(str(reference)).load()

    def test_serial_exhausted_retries_stay_retryable_on_resume(self, tmp_path):
        # A SimulationError (here: a watchdog timeout from a doomed cycle
        # budget) is transient by assumption — resume re-attempts it, and
        # a healthier config heals the store. Only deterministic errors
        # and supervisor quarantines are skipped on resume.
        doomed = dataclasses.replace(make_config(), max_cycles=60)
        out = tmp_path / "doomed.jsonl"
        first = run_sweep(tiny_points(apps=["BFS"]), str(out),
                          gpu_config=doomed, retries=0, sleep=lambda s: None)
        assert first.failed == 1
        record = next(iter(ResultsStore(str(out)).load().values()))
        assert record["quarantined"] is False
        resumed = run_sweep(tiny_points(apps=["BFS"]), str(out),
                            gpu_config=make_config(), resume_from=str(out))
        assert resumed.simulated == 1
        assert resumed.quarantined_skipped == 0
        assert resumed.failed == 0

    def test_pool_degrades_to_serial_and_stays_identical(self, tmp_path, capsys):
        cfg = make_config()
        serial = tmp_path / "serial.jsonl"
        run_sweep(tiny_points(), str(serial), gpu_config=cfg)

        # Every dispatch of every point kills its worker: the pool must
        # give up on processes and finish in-parent (where worker-site
        # faults never fire).
        faults.arm(FaultPlan(events=[
            FaultEvent("worker.point", index, "crash", every_attempt=True)
            for index in range(len(tiny_points()))
        ]))
        chaotic = tmp_path / "degraded.jsonl"
        summary = run_sweep(
            tiny_points(), str(chaotic), gpu_config=cfg, jobs=2,
            supervisor=fast_supervisor(degrade_after=1, max_attempts=5))
        assert summary.failed == 0
        assert chaotic.read_bytes() == serial.read_bytes()
        assert "pool degraded to serial" in capsys.readouterr().err


class TestMemoHashVerification:
    def test_corrupted_memo_is_rejected_and_resimulated(self, tmp_path, capsys):
        cfg = make_config()
        registry = RegistryStore(tmp_path / "reg")
        cold = tmp_path / "cold.jsonl"
        run_sweep(tiny_points(), str(cold), gpu_config=cfg, registry=registry)

        corrupted_run_id = corrupt_last_record(registry)
        assert corrupted_run_id is not None

        warm = tmp_path / "warm.jsonl"
        summary = run_sweep(tiny_points(), str(warm), gpu_config=cfg,
                            registry=registry)
        assert summary.cache_rejected == 1
        assert summary.simulated == 1  # the poisoned point, re-simulated
        assert summary.cache_hits == len(tiny_points()) - 1
        # The corrupted payload never reaches the results store.
        assert warm.read_bytes() == cold.read_bytes()
        assert "rejected" in capsys.readouterr().err

    def test_intact_memos_still_replay(self, tmp_path):
        cfg = make_config()
        registry = RegistryStore(tmp_path / "reg")
        cold = tmp_path / "cold.jsonl"
        run_sweep(tiny_points(), str(cold), gpu_config=cfg, registry=registry)
        warm = tmp_path / "warm.jsonl"
        summary = run_sweep(tiny_points(), str(warm), gpu_config=cfg,
                            registry=registry)
        assert summary.cache_rejected == 0
        assert summary.simulated == 0
        assert warm.read_bytes() == cold.read_bytes()


class TestChaosHarness:
    def test_chaos_converges_byte_identically(self, tmp_path):
        report = run_chaos(
            ["crash", "torn-write", "disk-full", "corrupt-record"],
            jobs=2, out_dir=str(tmp_path / "chaos"), deadline_s=2.0)
        assert report.ok, format_chaos(report)
        assert report.store_identical
        assert report.registry_identical
        assert report.fsck_verify_ok
        assert "verdict: OK" in format_chaos(report)

    def test_chaos_artifacts_left_for_inspection(self, tmp_path):
        out = tmp_path / "chaos"
        run_chaos(["torn-write"], jobs=1, out_dir=str(out))
        assert (out / "clean.jsonl").exists()
        assert (out / "chaos.jsonl").exists()
        assert (out / "chaos_registry" / "records.jsonl").exists()
