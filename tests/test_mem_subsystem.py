"""Event queue and memory-subsystem wiring."""

from conftest import make_config
from repro.mem.cache import AccessOutcome
from repro.mem.subsystem import EventQueue, MemorySubsystem
from repro.stats.counters import SimStats


class TestEventQueue:
    def test_runs_due_events_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda t: seen.append(("a", t)))
        q.schedule(5, lambda t: seen.append(("b", t)))
        q.run_until(10)
        assert seen == [("b", 5), ("a", 10)]

    def test_fifo_tie_break(self):
        q = EventQueue()
        seen = []
        q.schedule(5, lambda t: seen.append("first"))
        q.schedule(5, lambda t: seen.append("second"))
        q.run_until(5)
        assert seen == ["first", "second"]

    def test_future_events_stay_queued(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda t: seen.append(t))
        q.run_until(9)
        assert seen == []
        assert len(q) == 1
        assert q.next_event_cycle == 10

    def test_empty_queue(self):
        q = EventQueue()
        assert q.next_event_cycle is None
        q.run_until(100)  # no-op


class TestMemorySubsystem:
    def make(self, num_sms=2):
        cfg = make_config(num_sms=num_sms)
        stats = SimStats()
        return MemorySubsystem(cfg, stats), stats, cfg

    def test_one_l1_per_sm(self):
        sub, _, cfg = self.make(num_sms=3)
        assert len(sub.l1s) == 3

    def test_miss_schedules_fill_event(self):
        sub, stats, cfg = self.make()
        outcome, _ = sub.l1s[0].access(0, 0, 0)
        assert outcome is AccessOutcome.MISS
        assert len(sub.events) == 1
        # Fill arrives after L2-miss latency; line is then resident.
        sub.events.run_until(10_000)
        assert sub.l1s[0].contains(0)

    def test_l1s_are_private(self):
        sub, _, _ = self.make()
        sub.l1s[0].access(0, 0, 0)
        sub.events.run_until(10_000)
        assert sub.l1s[0].contains(0)
        assert not sub.l1s[1].contains(0)

    def test_second_sm_hits_shared_l2(self):
        sub, stats, _ = self.make()
        sub.l1s[0].access(0, 0, 0)
        sub.events.run_until(10_000)
        sub.l1s[1].access(0, 0, 20_000)
        assert stats.memory.l2_accesses == 2
        assert stats.memory.l2_hits == 1
        assert stats.memory.dram_requests == 1

    def test_fill_latency_recorded(self):
        sub, stats, _ = self.make()
        sub.l1s[0].access(0, 0, 0)
        sub.events.run_until(10_000)
        assert stats.memory.demand_latency_count == 1
        assert stats.memory.demand_latency_sum >= 100  # DRAM latency floor

    def test_hit_latency_recorded_via_hook(self):
        sub, stats, _ = self.make()
        sub.record_hit_latency(4)
        assert stats.memory.demand_latency_sum == 4
        assert stats.memory.demand_latency_count == 1

    def test_store_invalidates_and_counts(self):
        sub, stats, _ = self.make()
        sub.l1s[0].access(0, 0, 0)
        sub.events.run_until(10_000)
        sub.store(0, [0], 20_000)
        assert not sub.l1s[0].contains(0)
        assert stats.memory.bytes_stored == 128

    def test_traffic_counted_per_fill(self):
        sub, stats, _ = self.make()
        sub.l1s[0].access(0, 0, 0)
        sub.l1s[0].access(1024, 0, 0)
        assert stats.memory.bytes_l2_to_l1 == 256
