"""Results registry: identity hashing, the store, provenance, the diff gate.

The registry is the paper trail for every reproduced number: the same
logical experiment must always hash to the same run id, the store must
survive losing its SQLite index, and ``repro diff`` must exit nonzero on
drift — that exit code is the CI regression gate.
"""

import dataclasses
import json

import pytest

from conftest import make_config
from repro.cli import main
from repro.experiments.sweep import run_sweep, sweep_points
from repro.registry.diffing import diff_metrics, format_diff
from repro.registry.provenance import collect_provenance
from repro.registry.records import (
    RunRecord,
    config_hash,
    content_hash,
    figure_record,
    flatten_metrics,
    headline_metrics,
    workload_seed,
)
from repro.registry.store import RegistryError, RegistryStore
from repro.workloads.suite import workload


@pytest.fixture
def store(tmp_path, monkeypatch):
    root = tmp_path / "registry"
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(root))
    return RegistryStore()


def fig_payload(total=3.0):
    return {"series": {"BFS": 1.0, "KM": 2.0}, "GMEAN": total}


class TestContentHash:
    def test_key_order_does_not_matter(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_values_do_matter(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_hex_and_length(self):
        digest = content_hash({"x": 1})
        assert len(digest) == 16
        int(digest, 16)  # must be valid hex


class TestConfigHash:
    def test_equal_configs_hash_equal(self):
        assert config_hash(make_config()) == config_hash(make_config())

    def test_field_change_changes_hash(self):
        assert config_hash(make_config()) != config_hash(make_config(mshrs=8))

    def test_non_dataclass_falls_back_to_repr(self):
        assert config_hash("cfg-a") != config_hash("cfg-b")


class TestWorkloadSeed:
    def test_deterministic_per_workload(self):
        assert workload_seed(workload("KM")) == workload_seed(workload("KM"))

    def test_is_plain_int(self):
        assert isinstance(workload_seed(workload("BFS")), int)

    def test_repr_fallback_for_seedless_specs(self):
        assert workload_seed("spec-a") == workload_seed("spec-a")
        assert workload_seed("spec-a") != workload_seed("spec-b")


class TestFlattenMetrics:
    def test_nested_dicts_and_lists(self):
        flat = flatten_metrics({"a": {"b": 1, "c": [2, 3]}, "d": 4})
        assert flat == {"a.b": 1.0, "a.c.0": 2.0, "a.c.1": 3.0, "d": 4.0}

    def test_bools_and_strings_are_not_metrics(self):
        assert flatten_metrics({"ok": True, "name": "KM", "v": 2}) == {"v": 2.0}

    def test_dataclasses_flatten_like_dicts(self):
        @dataclasses.dataclass
        class Point:
            x: int
            label: str

        assert flatten_metrics({"p": Point(7, "hi")}) == {"p.x": 7.0}

    def test_scalar_gets_a_default_key(self):
        assert flatten_metrics(3) == {"value": 3.0}


class TestHeadlineMetrics:
    def test_prefers_aggregate_keys(self):
        headline = headline_metrics(
            {"apres": {"BFS": 1.4, "GMEAN": 1.2}, "bytes": {"total": 724}}
        )
        assert headline == {"apres.GMEAN": 1.2, "bytes.total": 724.0}

    def test_falls_back_to_first_metrics(self):
        flat = headline_metrics({"a": 1, "b": 2, "c": 3}, limit=2)
        assert flat == {"a": 1.0, "b": 2.0}


class TestStore:
    def test_put_roundtrips_through_latest(self, store):
        record = store.put(figure_record("figure10", fig_payload(), 0.5))
        got = store.latest(kind="figure", name="figure10")
        assert got["run_id"] == record.run_id
        assert got["metrics"]["series.KM"] == 2.0
        assert RunRecord.from_dict(got).identity["figure"] == "figure10"

    def test_every_occurrence_is_kept(self, store):
        record = store.put(figure_record("figure10", fig_payload(), 0.5))
        store.put(figure_record("figure10", fig_payload(), 0.5))
        assert store.count() == 2
        assert len(store.history(record.run_id)) == 2

    def test_list_filters_by_kind_and_name(self, store):
        store.put(figure_record("figure10", fig_payload(), 0.5))
        store.put(figure_record("figure12", fig_payload(), 0.5))
        assert len(store.list(kind="figure")) == 2
        assert [r["name"] for r in store.list(name="figure12")] == ["figure12"]

    def test_scale_changes_the_identity(self, store):
        a = store.put(figure_record("figure10", fig_payload(), 0.5))
        b = store.put(figure_record("figure10", fig_payload(), 0.25))
        assert a.run_id != b.run_id

    def test_resolve_by_prefix(self, store):
        record = store.put(figure_record("figure10", fig_payload(), 0.5))
        assert store.resolve(record.run_id[:6])["run_id"] == record.run_id

    def test_resolve_errors(self, store):
        with pytest.raises(RegistryError, match="empty"):
            store.resolve("deadbeef")
        record = store.put(figure_record("figure10", fig_payload(), 0.5))
        with pytest.raises(RegistryError, match="matches"):
            store.resolve("zzzz")
        with pytest.raises(RegistryError, match="occurrence"):
            store.resolve(record.run_id, nth=1)

    def test_resolve_ambiguous_prefix(self, store):
        store.put(figure_record("figure10", fig_payload(), 0.5))
        store.put(figure_record("figure12", fig_payload(), 0.5))
        with pytest.raises(RegistryError, match="ambiguous"):
            store.resolve("")

    def test_rebuild_index_from_jsonl(self, store):
        record = store.put(figure_record("figure10", fig_payload(), 0.5))
        store.put(figure_record("figure12", fig_payload(), 0.5))
        store.db_path.unlink()
        assert store.count() == 0
        assert store.rebuild_index() == 2
        assert store.resolve(record.run_id)["name"] == "figure10"

    def test_rebuild_skips_torn_jsonl_tail(self, store):
        store.put(figure_record("figure10", fig_payload(), 0.5))
        with open(store.jsonl_path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "trunc')  # crash mid-append
        assert store.rebuild_index() == 1


class TestProvenance:
    def test_stamp_has_the_audit_fields(self):
        stamp = collect_provenance()
        assert {
            "git_sha", "git_dirty", "code_version", "host",
            "python", "bench_scale_env", "created_unix",
        } <= set(stamp)
        # The suite runs inside the repo checkout, so git must resolve.
        assert isinstance(stamp["git_sha"], str) and len(stamp["git_sha"]) == 40

    def test_bench_scale_env_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert collect_provenance()["bench_scale_env"] == "0.25"

    def test_records_carry_the_stamp(self, store):
        got = store.put(figure_record("figure10", fig_payload(), 0.5))
        assert got.provenance["git_sha"] == collect_provenance()["git_sha"]


class TestCLIIngestion:
    def test_run_ingests_a_run_record(self, store):
        assert main(["run", "KM", "base", "--scale", "0.05"]) == 0
        got = store.latest(kind="run")
        assert got["name"] == "KM|base"
        assert got["metrics"]["ipc"] > 0
        from repro.experiments.configs import CONFIGS

        spec = CONFIGS["base"]
        assert got["identity"]["scheduler"] == spec.scheduler
        assert got["identity"]["prefetcher"] == (spec.prefetcher or "none")
        assert isinstance(got["identity"]["seed"], int)
        assert got["stalls"] is None or "by_cause" in got["stalls"]
        assert got["wall_time_s"] >= 0

    def test_reruns_land_under_one_run_id(self, store, capsys):
        main(["run", "KM", "base", "--scale", "0.05"])
        main(["run", "KM", "base", "--scale", "0.05"])
        capsys.readouterr()
        run_id = store.latest(kind="run")["run_id"]
        assert len(store.history(run_id)) == 2
        # diff <run-id> compares the two occurrences: identical -> PASS.
        assert main(["diff", run_id[:8]]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_no_registry_flag_skips_ingestion(self, store):
        assert main(["run", "KM", "base", "--scale", "0.05",
                     "--no-registry"]) == 0
        assert store.count() == 0

    def test_figure_command_ingests_a_figure_record(self, store, capsys):
        assert main(["figure", "12", "--scale", "0.05",
                     "--apps", "BFS", "KM"]) == 0
        got = store.latest(kind="figure", name="figure12")
        assert got["identity"]["apps"] == ["BFS", "KM"]
        assert "registry:" in capsys.readouterr().out


class TestSweepProvenance:
    def test_points_are_stamped_and_ingested(self, tmp_path, store):
        out = str(tmp_path / "sweep.jsonl")
        summary = run_sweep(
            sweep_points(["KM"], ["apres"], [0.05]), out,
            gpu_config=make_config(), registry=store,
        )
        assert summary.simulated == 1
        with open(out, "r", encoding="utf-8") as fh:
            record = json.loads(fh.readline())
        prov = record["provenance"]
        assert len(prov["git_sha"]) == 40
        assert prov["config_hash"] == config_hash(make_config())
        assert prov["scheduler"] == "apres"
        assert prov["prefetcher"] == "none"
        assert prov["seed"] == workload_seed(workload("KM"))
        assert "bench_scale_env" in prov
        got = store.latest(kind="run")
        assert got["name"] == "KM|apres"
        assert got["identity"]["seed"] == prov["seed"]

    def test_sweep_and_run_agree_on_identity(self, store):
        """The same logical point hashes identically from either entry."""
        main(["run", "KM", "base", "--scale", "0.05"])
        direct = store.latest(kind="run")["run_id"]
        with_sweep = RegistryStore(store.root / "sweep-side")
        run_sweep(
            sweep_points(["KM"], ["base"], [0.05]),
            str(store.root / "sweep.jsonl"),
            registry=with_sweep,
        )
        assert with_sweep.latest(kind="run")["run_id"] == direct


class TestDiffGate:
    def test_within_tolerance_passes(self):
        report = diff_metrics({"ipc": 1.00}, {"ipc": 1.04}, rtol=0.05)
        assert report.ok and not report.failed

    def test_drift_fails(self):
        report = diff_metrics({"ipc": 1.00}, {"ipc": 1.10}, rtol=0.05)
        assert not report.ok
        assert [row.key for row in report.failed] == ["ipc"]
        assert "FAIL" in format_diff(report)

    def test_atol_floors_the_band_near_zero(self):
        assert not diff_metrics({"x": 0.0}, {"x": 1e-6}).ok
        assert diff_metrics({"x": 0.0}, {"x": 1e-6}, atol=1e-3).ok

    def test_glob_overrides_first_match_wins(self):
        report = diff_metrics(
            {"fig.a": 1.0, "fig.b": 1.0},
            {"fig.a": 1.5, "fig.b": 1.5},
            rtol=0.05,
            overrides={"fig.a": 0.6, "fig.*": 0.01},
        )
        assert [row.key for row in report.failed] == ["fig.b"]

    def test_missing_keys_reported_but_not_fatal(self):
        report = diff_metrics({"gone": 1.0, "x": 2.0}, {"x": 2.0, "new": 3.0})
        assert report.ok
        assert report.only_in_a == ["gone"]
        assert report.only_in_b == ["new"]

    def test_ignore_globs(self):
        report = diff_metrics(
            {"noise.a": 1.0, "x": 2.0}, {"noise.a": 9.0, "x": 2.0},
            ignore=("noise.*",),
        )
        assert report.ok and [row.key for row in report.rows] == ["x"]
