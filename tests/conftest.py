"""Shared fixtures: small configurations and kernels that simulate quickly."""

from __future__ import annotations


import pytest

from repro.config import APRESConfig, CacheConfig, DRAMConfig, GPUConfig
from repro.isa.address import BroadcastAddress, StridedAddress
from repro.isa.instructions import alu, load, store
from repro.isa.program import KernelSpec

GB = 1 << 30


@pytest.fixture(autouse=True)
def _isolated_registry(tmp_path_factory, monkeypatch):
    """Keep CLI/benchmark registry ingestion out of the working tree.

    Commands like ``repro run`` auto-ingest into bench_results/registry
    relative to the CWD; tests must never touch that store.
    """
    monkeypatch.setenv(
        "REPRO_REGISTRY_DIR", str(tmp_path_factory.mktemp("registry"))
    )


def make_config(
    num_sms: int = 1,
    max_warps: int = 8,
    l1_bytes: int = 4 * 1024,
    mshrs: int = 16,
) -> GPUConfig:
    """A shrunken GPU that keeps unit tests fast but exercises every path."""
    return GPUConfig(
        num_sms=num_sms,
        max_warps_per_sm=max_warps,
        l1=CacheConfig(size_bytes=l1_bytes, associativity=4, num_mshrs=mshrs),
        l2=CacheConfig(
            size_bytes=64 * 1024,
            associativity=8,
            hit_latency=50,
            num_mshrs=32,
            num_banks=4,
            service_cycles=2,
        ),
        dram=DRAMConfig(num_partitions=4, latency=100, service_cycles=4),
        max_cycles=2_000_000,
    )


@pytest.fixture
def tiny_config() -> GPUConfig:
    return make_config()


@pytest.fixture
def two_sm_config() -> GPUConfig:
    return make_config(num_sms=2)


def streaming_kernel(iterations: int = 10, waves: int = 1) -> KernelSpec:
    """Every warp walks its own fresh lines: all misses, no reuse."""
    gen = StridedAddress(1 * GB, warp_stride=4096, iter_stride=128,
                         footprint_bytes=64 << 20)
    return KernelSpec(
        "stream",
        [load(0x10, gen), alu(0x18), alu(0x20)],
        iterations,
        waves=waves,
    )


def broadcast_kernel(iterations: int = 10) -> KernelSpec:
    """All warps read the same small region: hits after the first touch."""
    gen = BroadcastAddress(2 * GB, region_bytes=1024)
    return KernelSpec("bcast", [load(0x10, gen), alu(0x18)], iterations)


def mixed_kernel(iterations: int = 10) -> KernelSpec:
    """One broadcast load, one streaming load, one store."""
    hot = BroadcastAddress(2 * GB, region_bytes=1024)
    cold = StridedAddress(3 * GB, warp_stride=8192, iter_stride=128,
                          footprint_bytes=64 << 20)
    st = StridedAddress(4 * GB, warp_stride=128, iter_stride=2048)
    return KernelSpec(
        "mixed",
        [load(0x10, hot), alu(0x18), load(0x20, cold), alu(0x28), store(0x30, st)],
        iterations,
    )


@pytest.fixture
def stream_kernel() -> KernelSpec:
    return streaming_kernel()


@pytest.fixture
def bcast_kernel() -> KernelSpec:
    return broadcast_kernel()


@pytest.fixture
def mix_kernel() -> KernelSpec:
    return mixed_kernel()


@pytest.fixture
def apres_cfg() -> APRESConfig:
    return APRESConfig()
