"""Instruction constructors and validation."""

import pytest

from repro.isa.address import BroadcastAddress
from repro.isa.instructions import Instr, Op, alu, load, store

GEN = BroadcastAddress(1 << 30, region_bytes=1024)


class TestConstructors:
    def test_alu(self):
        i = alu(0x40)
        assert i.op is Op.ALU
        assert i.pc == 0x40
        assert i.addr_gen is None
        assert not i.is_mem

    def test_load(self):
        i = load(0x10, GEN, label="edges")
        assert i.op is Op.LOAD
        assert i.addr_gen is GEN
        assert i.label == "edges"
        assert i.is_mem

    def test_store(self):
        i = store(0x20, GEN)
        assert i.op is Op.STORE
        assert i.is_mem


class TestValidation:
    def test_alu_rejects_address_generator(self):
        with pytest.raises(ValueError):
            Instr(Op.ALU, 0x10, GEN)

    def test_load_requires_address_generator(self):
        with pytest.raises(ValueError):
            Instr(Op.LOAD, 0x10)

    def test_store_requires_address_generator(self):
        with pytest.raises(ValueError):
            Instr(Op.STORE, 0x10)

    def test_frozen(self):
        i = alu(0x10)
        with pytest.raises(AttributeError):
            i.pc = 0x20  # type: ignore[misc]
