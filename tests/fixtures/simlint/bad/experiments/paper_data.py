"""SL006 bad fixture: golden data drifted from the producers.

``figure42`` is stale (no producer of that name exists any more),
``figure11``/``figure42`` have golden data but no SCORECARD spec (so
they are never scored), and ``table7`` has a spec without golden data
(so scoring it would fail at runtime).
"""

GOLDEN = {
    "figure10": {"apres": {"BFS": 1.46, "KM": 2.20}},
    "figure11": {"A": {"BFS": 0.61, "KM": 0.38}},
    "figure42": {"apres": {"BFS": 1.0}},  # stale: producer was removed
}

SCORECARD = {
    "figure10": {"kind": "grid", "ylabel": "speedup"},
    "table7": {"kind": "table7", "ylabel": "bytes"},  # spec without goldens
}
