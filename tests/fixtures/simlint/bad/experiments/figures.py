"""SL006 bad fixture: producers drifted from the golden data.

``figure99`` and ``table5`` have no GOLDEN entries, so the scorecard
never sees them drift; see the paired ``paper_data.py`` for the stale
and unscored golden keys.
"""


def figure10(apps=None, scale=0.5):
    return {"apres": {"BFS": 1.46, "KM": 2.20}}


def figure11(apps=None, scale=0.5):
    return {"A": {"BFS": 0.61, "KM": 0.38}}


def figure99(apps=None, scale=0.5):  # no GOLDEN entry: escapes the gate
    return {"apres": {"BFS": 1.0}}


def table5(scale=0.5):  # no GOLDEN entry either
    return {"bytes": {"total": 12.0}}


def build_grid(rows):  # not a producer: name does not match figureN/tableN
    return dict(rows)
