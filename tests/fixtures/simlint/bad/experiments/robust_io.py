"""Bad: fragile persistence I/O and silenced failures (SL008 × 5)."""

import json
import os


def save_summary(path, payload):
    with open(path, "w", encoding="utf-8") as fh:  # torn on crash
        json.dump(payload, fh)


def append_row(path, line):
    with open(path, "a", encoding="utf-8") as fh:  # torn on crash
        fh.write(line + "\n")


def export_json(out, payload):
    out.write_text(json.dumps(payload))  # non-atomic replace


def read_or_ignore(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except:  # noqa: E722  — also catches KeyboardInterrupt
        return None


def best_effort_cleanup(path):
    try:
        os.remove(path)
    except OSError:
        pass  # the failure vanishes without a trace
