"""SL007 known-bad (hot path): slot-less and function-local classes."""

from dataclasses import dataclass


class WarpSlot:  # finding: no __slots__
    def __init__(self, warp_id):
        self.warp_id = warp_id


@dataclass
class IssueRecord:  # finding: dataclass without slots=True
    warp_id: int
    cycle: int


def make_tracker(limit):
    class Tracker:  # finding: function-local class cannot pickle
        __slots__ = ("limit",)

        def __init__(self):
            self.limit = limit

    return Tracker()
