"""SL009 known-bad: per-SM cores mutating shared state from ``cycle``."""


class ResultHub:
    """Shared sink every core writes into — a cross-SM race in waiting."""

    __slots__ = ("total_issued", "last_core", "pending")

    def __init__(self):
        self.total_issued = 0
        self.last_core = -1
        self.pending = []


class IsoCore:
    """One simulated SM; ``cycle`` is the per-SM root."""

    __slots__ = ("core_id", "hub", "issued")

    def __init__(self, core_id, hub):
        self.core_id = core_id
        self.hub = hub
        self.issued = 0

    def cycle(self, now):
        self.issued += 1  # fine: SM-private
        self.hub.total_issued += 1  # finding: shared aug write
        self.hub.last_core = self.core_id  # finding: shared attr write
        self.hub.pending.append(now)  # finding: shared container write
        return True


class IsoMachine:
    """Fans the cores out; the loop bound marks them per-SM."""

    __slots__ = ("cores", "hub")

    def __init__(self, cfg, hub: ResultHub):
        self.hub = hub
        self.cores = []
        for core_id in range(cfg.num_sms):
            self.cores.append(IsoCore(core_id, hub))
