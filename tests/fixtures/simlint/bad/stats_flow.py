"""SL003 known-bad: an undeclared counter update and a dead declared counter."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    cycles: int = 0
    hits: int = 0
    dead_counter: int = 0  # finding: declared but never updated


class Pipeline:
    def __init__(self, stats: FixtureStats):
        self.stats = stats

    def tick(self):
        self.stats.cycles += 1
        self.stats.hits += 1
        self.stats.phantom_counter += 1  # finding: updated but never declared
