"""SL005 known-bad: mutating frozen config objects in place."""


def shrink_cache(config):
    config.l1_size = 1024  # finding: attribute assignment on a config


def bump_latency(cfg):
    cfg.dram_latency += 50  # finding: augmented assignment on a config


def rename(gpu_config, value):
    setattr(gpu_config, "label", value)  # finding: setattr on a config
