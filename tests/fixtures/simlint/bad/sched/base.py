"""SL004 fixture base module: the abstract scheduler root."""


class BaseScheduler:
    def pick(self, ready):
        raise NotImplementedError
