"""SL004 fixture plugin: registered scheduler plus an unregistered subclass."""

from .base import BaseScheduler


class GreedyScheduler(BaseScheduler):
    def pick(self, ready):
        return ready[0]


class RogueScheduler(GreedyScheduler):  # finding: registrable but unregistered
    def pick(self, ready):
        return ready[-1]
