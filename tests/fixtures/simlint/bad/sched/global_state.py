"""SL010 known-bad: the three hidden-global patterns in a hot package."""

_SEEN_WARPS = {}


class QuotaTracker:
    """Class-level mutable: one dict silently shared by every instance."""

    __slots__ = ("name",)

    quotas = {}  # finding: class-level mutable attribute

    def __init__(self, name):
        self.name = name


def note_warp(warp_id, cycle):
    _SEEN_WARPS[warp_id] = cycle  # finding: module-level mutable mutated


def drain_warps(batch=[]):  # finding: mutable default argument
    batch.extend(_SEEN_WARPS)
    return batch
