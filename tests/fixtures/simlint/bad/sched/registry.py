"""SL004 fixture registry: one good entry, one that cannot resolve."""

from .greedy import GreedyScheduler

SCHEDULERS = {
    "greedy": GreedyScheduler,
    "phantom": PhantomScheduler,  # finding: no module defines this class  # noqa: F821
}
