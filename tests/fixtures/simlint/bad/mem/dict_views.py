"""SL001 known-bad (hot path): dict-view iteration without sorted()."""


class Table:
    __slots__ = ("entries",)

    def __init__(self):
        self.entries: dict[int, int] = {}

    def walk(self):
        for addr, count in self.entries.items():  # finding: .items() hot-path
            yield addr, count

    def addresses(self):
        return list(self.entries.keys())  # finding: .keys() into list()

    def counts(self):
        yield from self.entries.values()  # finding: yield from .values()
