"""SL002 known-bad (hot path): unpicklable callables on checkpointable state."""


class FillQueue:
    __slots__ = ("callbacks", "on_fill")

    def __init__(self):
        self.callbacks = []
        self.on_fill = None

    def arm(self, warp_id):
        self.on_fill = lambda cycle: warp_id + cycle  # finding: lambda attribute

    def arm_local(self, warp_id):
        def done(cycle):
            return warp_id + cycle

        self.on_fill = done  # finding: local def stored on attribute

    def schedule(self, warp_id):
        self.callbacks.append(lambda cycle: warp_id)  # finding: lambda into sink
