"""SL001 known-bad: hash-order iteration, id() ordering, unseeded random."""

import random


def drain(pending: set[int]) -> list[int]:
    out = []
    for item in pending:  # finding: set iteration
        out.append(item)
    return out


def materialise(live: frozenset[str]) -> list[str]:
    return list(live)  # finding: order-sensitive converter over a set


def rank(items):
    return sorted(items, key=id)  # finding: ordering by key=id


def tag(obj):
    return id(obj)  # finding: id() on simulation state


def jitter() -> float:
    return random.random()  # finding: process-global unseeded RNG
