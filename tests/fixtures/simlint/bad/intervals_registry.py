"""SL004 known-bad: duplicate registry key and a metric/method mismatch."""


INTERVAL_METRICS: dict[str, str] = {
    "ipc": "instructions per cycle within the window",
    "ipc": "duplicated key",  # noqa: F601  finding: repeats 'ipc'
    "uncomputed": "no method computes this",  # finding: no _metric_uncomputed
}


class Collector:
    def _metric_ipc(self) -> float:
        return 0.0

    def _metric_secret(self) -> float:  # finding: not in INTERVAL_METRICS
        return 1.0
