"""Known-bad: metric emit sites drifting from the METRICS declarations."""

METRICS = {
    "harness.ticks.run": ("counter", "harness ticks executed"),
    "harness.workers.alive": ("gauge", "live harness workers"),
    "harness.orphan.declared": ("counter", "declared but never emitted"),
}


class Harness:
    def __init__(self, registry):
        self.registry = registry

    def tick(self):
        # Undeclared name: the runtime registry raises KeyError here.
        self.registry.counter("harness.ticks.unknown").inc()
        # Declared as a gauge, emitted via .counter(): TypeError at runtime.
        self.registry.counter("harness.workers.alive").inc()
        # Fine — declared counter emitted as a counter.
        self.registry.counter("harness.ticks.run").inc()
