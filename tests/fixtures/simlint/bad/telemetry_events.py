"""SL003 known-bad: a telemetry event registry with every drift mode.

Never imported — ``GhostEvent`` and ``PhantomEvent`` are deliberately
undefined names; the linter works on the AST alone.
"""

from dataclasses import dataclass
from typing import Any, ClassVar


@dataclass
class TelemetryEvent:
    kind: ClassVar[str] = ""
    cycle: int


@dataclass
class GoodEvent(TelemetryEvent):
    kind: ClassVar[str] = "good"
    value: int


@dataclass
class MislabeledEvent(TelemetryEvent):
    kind: ClassVar[str] = "mislabeled"
    value: int


@dataclass
class UnregisteredEvent(TelemetryEvent):  # finding: not in EVENT_TYPES
    kind: ClassVar[str] = "unregistered"
    value: int


@dataclass
class OrphanEvent(TelemetryEvent):  # finding: registered but never emitted
    kind: ClassVar[str] = "orphan"
    value: int


EVENT_TYPES: dict[str, type] = {
    "good": GoodEvent,
    "wrong_kind": MislabeledEvent,  # finding: key != class kind literal
    "ghost": GhostEvent,  # noqa: F821  finding: class does not exist
    "orphan": OrphanEvent,
}


def emit_all(hub: Any) -> None:
    hub.emit(GoodEvent(cycle=0, value=1))
    hub.emit(MislabeledEvent(cycle=0, value=2))
    hub.emit(PhantomEvent(cycle=0, value=3))  # noqa: F821  finding: unknown
