"""SL003 known-good twin: registry, kind literals, and emit sites agree."""

from dataclasses import dataclass
from typing import Any, ClassVar


@dataclass
class TelemetryEvent:
    kind: ClassVar[str] = ""
    cycle: int


@dataclass
class GoodEvent(TelemetryEvent):
    kind: ClassVar[str] = "good"
    value: int


@dataclass
class OtherEvent(TelemetryEvent):
    kind: ClassVar[str] = "other"
    value: int


EVENT_TYPES: dict[str, type] = {
    "good": GoodEvent,
    "other": OtherEvent,
}


def emit_all(hub: Any) -> None:
    hub.emit(GoodEvent(cycle=0, value=1))
    hub.emit(OtherEvent(cycle=0, value=2))
