"""SL001 known-good: ordered iteration and explicitly seeded randomness."""

import random


def drain(pending: set[int]) -> list[int]:
    out = []
    for item in sorted(pending):
        out.append(item)
    return out


def materialise(live: frozenset[str]) -> list[str]:
    return sorted(live)


def rank(items):
    return sorted(items, key=lambda entry: entry.priority)


def tag(obj):
    return obj.uid


def jitter(seed: int) -> float:
    return random.Random(seed).random()


def population(pending: set[int]) -> int:
    # Order-insensitive sinks over sets are fine.
    return sum(1 for item in pending if item > 0)
