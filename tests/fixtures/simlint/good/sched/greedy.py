"""SL004 fixture plugin: every registrable class is registered."""

from .base import BaseScheduler


class GreedyScheduler(BaseScheduler):
    def pick(self, ready):
        return ready[0]


class PatientScheduler(GreedyScheduler):
    def pick(self, ready):
        return ready[-1]
