"""SL010 known-good twin: state owned by objects, populated at import."""

#: Populated once at import time and treated as read-only afterwards.
_WARP_KINDS = {"compute": 0, "memory": 1}


class QuotaTracker:
    """Per-instance state lives in ``__init__``."""

    __slots__ = ("name", "quotas")

    def __init__(self, name):
        self.name = name
        self.quotas = {}


class WarpLog:
    """The former module global, now an explicit owning object."""

    __slots__ = ("seen",)

    def __init__(self):
        self.seen = {}

    def note_warp(self, warp_id, cycle):
        self.seen[warp_id] = cycle

    def drain_warps(self, batch=None):
        out = [] if batch is None else batch
        out.extend(self.seen)
        return out
