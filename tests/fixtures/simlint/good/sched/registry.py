"""SL004 fixture registry: complete and fully resolvable."""

from .greedy import GreedyScheduler, PatientScheduler

SCHEDULERS = {
    "greedy": GreedyScheduler,
    "patient": PatientScheduler,
}
