"""Corrected twin: every emit site declared, typed right, none orphaned."""

METRICS = {
    "harness.ticks.run": ("counter", "harness ticks executed"),
    "harness.workers.alive": ("gauge", "live harness workers"),
}


class Harness:
    def __init__(self, registry):
        self.registry = registry

    def tick(self, alive):
        self.registry.counter("harness.ticks.run").inc()
        self.registry.gauge("harness.workers.alive").set(alive)
