"""SL006 good fixture: producers, goldens and scorecard in lock-step."""


def figure10(apps=None, scale=0.5):
    return {"apres": {"BFS": 1.46, "KM": 2.20}}


def table2():
    return {"bytes": {"total": 724.0}}


def build_grid(rows):  # helpers are exempt: name is not figureN/tableN
    return dict(rows)
