"""Good: atomic persistence and explicit, narrow error handling."""

import json
import os


def save_summary(path, payload):
    # Write-temp / fsync / rename: a crash leaves the old file intact.
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def append_row(path, line):
    from repro.resilience.atomic import append_line

    append_line(path, line)


def export_json(out, payload):
    from repro.resilience.atomic import atomic_write

    atomic_write(out, json.dumps(payload))


def read_or_none(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        print(f"unreadable {path}: {exc}")
        return None


def drain_telemetry(queue, record):
    try:
        queue.put(record)
    except Exception:  # simlint: ignore[SL008]
        # Deliberate: a dying telemetry channel must never take the
        # producing simulation down with it.
        pass
