"""SL006 good fixture: one GOLDEN + SCORECARD entry per producer."""

GOLDEN = {
    "figure10": {"apres": {"BFS": 1.46, "KM": 2.20}},
    "table2": {"bytes": {"total": 724.0}},
}

SCORECARD = {
    "figure10": {"kind": "grid", "ylabel": "speedup"},
    "table2": {"kind": "table2", "ylabel": "bytes"},
}
