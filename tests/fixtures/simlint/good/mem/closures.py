"""SL002 known-good (hot path): module-level callable objects, not closures."""


class _FillDone:
    """Picklable fill callback: module-level class, state in __slots__."""

    __slots__ = ("warp_id",)

    def __init__(self, warp_id):
        self.warp_id = warp_id

    def __call__(self, cycle):
        return self.warp_id + cycle


class FillQueue:
    __slots__ = ("callbacks", "on_fill")

    def __init__(self):
        self.callbacks = []
        self.on_fill = None

    def arm(self, warp_id):
        self.on_fill = _FillDone(warp_id)

    def schedule(self, warp_id):
        self.callbacks.append(_FillDone(warp_id))
