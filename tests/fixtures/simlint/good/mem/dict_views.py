"""SL001 known-good (hot path): sorted or justifiably suppressed dict views."""


class Table:
    __slots__ = ("entries",)

    def __init__(self):
        self.entries: dict[int, int] = {}

    def walk(self):
        for addr, count in sorted(self.entries.items()):
            yield addr, count

    def addresses(self):
        return sorted(self.entries.keys())

    def counts(self):
        # Insertion order here is allocation order, which is deterministic.
        yield from self.entries.values()  # simlint: ignore[SL001]
