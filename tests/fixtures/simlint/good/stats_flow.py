"""SL003 known-good: every counter declared, every declaration updated."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    cycles: int = 0
    hits: int = 0


class Pipeline:
    def __init__(self, stats: FixtureStats):
        self.stats = stats

    def tick(self):
        self.stats.cycles += 1
        self.stats.hits += 1
