"""SL005 known-good: configs are replaced, never mutated."""

import dataclasses


def shrink_cache(config):
    return dataclasses.replace(config, l1_size=1024)


def bump_latency(cfg):
    return dataclasses.replace(cfg, dram_latency=cfg.dram_latency + 50)
