"""SL004 known-good twin: every metric computed, every method registered."""


INTERVAL_METRICS: dict[str, str] = {
    "ipc": "instructions per cycle within the window",
    "l1_miss_rate": "L1 demand miss rate within the window",
}


class Collector:
    def _metric_ipc(self) -> float:
        return 0.0

    def _metric_l1_miss_rate(self) -> float:
        return 0.0
