"""SL007 known-good (hot path): slotted, exempt, or suppressed classes."""

import enum
from dataclasses import dataclass


class WarpSlot:
    __slots__ = ("warp_id",)

    def __init__(self, warp_id):
        self.warp_id = warp_id


@dataclass(slots=True)
class IssueRecord:
    warp_id: int
    cycle: int


class PipelineError(Exception):
    """Exception types are exempt: raise/pickle machinery wants __dict__."""


class Stage(enum.Enum):
    FETCH = 0
    ISSUE = 1


class LegacyTable:  # simlint: ignore[SL007] -- measured: __dict__ is cheaper here
    def __init__(self):
        self.rows = []
