"""SL009 known-good twin: boundary-declared hub plus one waived write."""


class ResultHub:  # simlint: boundary[aggregation hub: merged per epoch, ordering-tolerant]
    """Shared sink, but declared as a legal cross-SM channel."""

    __slots__ = ("total_issued", "last_core", "pending")

    def __init__(self):
        self.total_issued = 0
        self.last_core = -1
        self.pending = []


class DebugProbe:
    """Shared probe written only under a justified waiver."""

    __slots__ = ("last_seen",)

    def __init__(self):
        self.last_seen = -1


class IsoCore:
    """One simulated SM; all its cycle writes are private, boundary or waived."""

    __slots__ = ("core_id", "hub", "probe", "issued")

    def __init__(self, core_id, hub, probe):
        self.core_id = core_id
        self.hub = hub
        self.probe = probe
        self.issued = 0

    def cycle(self, now):
        self.issued += 1  # SM-private
        self.hub.total_issued += 1  # boundary class: allowed
        self.hub.pending.append(now)  # boundary class: allowed
        # Debug-only, torn values acceptable; removed before parallel runs.
        self.probe.last_seen = now  # simlint: ignore[SL009]
        return True


class IsoMachine:
    """Fans the cores out; the loop bound marks them per-SM."""

    __slots__ = ("cores", "hub", "probe")

    def __init__(self, cfg, hub: ResultHub, probe: DebugProbe):
        self.hub = hub
        self.probe = probe
        self.cores = []
        for core_id in range(cfg.num_sms):
            self.cores.append(IsoCore(core_id, hub, probe))
