"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "KM", "apres", "--scale", "0.1"])
        assert args.app == "KM"
        assert args.config == "apres"
        assert args.scale == 0.1

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE", "base"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "KM", "nope"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5"])

    def test_scorecard_args(self):
        args = build_parser().parse_args([
            "scorecard", "--figures", "figure10", "figure11",
            "--apps", "BFS", "KM", "--json", "--out", "card.json",
        ])
        assert args.figures == ["figure10", "figure11"]
        assert args.apps == ["BFS", "KM"]
        assert args.json is True
        assert args.out == "card.json"
        assert args.no_registry is False

    def test_diff_args(self):
        args = build_parser().parse_args([
            "diff", "baseline", "current.json",
            "--rtol", "0.1", "--tolerance", "figure10.*=0.2",
            "--ignore", "*.spearman",
        ])
        assert args.ref_a == "baseline"
        assert args.ref_b == "current.json"
        assert args.rtol == 0.1
        assert args.tolerance == ["figure10.*=0.2"]
        assert args.ignore == ["*.spearman"]

    def test_diff_requires_a_ref(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diff"])

    def test_diff_tolerances_default_unset(self):
        args = build_parser().parse_args(["diff", "baseline"])
        assert args.rtol is None and args.atol is None
        assert args.ref_b is None

    def test_report_args(self, tmp_path):
        args = build_parser().parse_args([
            "report", "--html", "out.html", "--from", "card.json",
        ])
        assert args.html == "out.html"
        assert args.from_json == "card.json"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "KMeans" in out
        assert "apres" in out

    def test_run(self, capsys):
        assert main(["run", "KM", "base", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "L1 miss rate" in out

    def test_compare(self, capsys):
        assert main(["compare", "KM", "laws", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "laws" in out
        assert "Speedup" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "KM", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "0xE8" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "724" in out

    def test_figure12(self, capsys):
        assert main(["figure", "12", "--scale", "0.05", "--apps", "KM"]) == 0
        out = capsys.readouterr().out
        assert "apres" in out

    def test_figure2(self, capsys):
        assert main(["figure", "2", "--scale", "0.05", "--apps", "KM"]) == 0
        out = capsys.readouterr().out
        assert "Cap+Conf" in out

    def test_report_from_scorecard_json(self, tmp_path, capsys):
        from repro.experiments import paper_data
        from repro.registry.scorecard import scorecard

        measured = {"figure10": {
            series: dict(per_app)
            for series, per_app in paper_data.GOLDEN["figure10"].items()
        }}
        card = tmp_path / "card.json"
        import json

        card.write_text(json.dumps(
            scorecard(figures=["figure10"], measured=measured)))
        html = tmp_path / "report.html"
        assert main(["report", "--from", str(card), "--html", str(html)]) == 0
        assert "html report" in capsys.readouterr().out
        text = html.read_text()
        assert "<html" in text
        assert "figure10" in text
        assert "Paper-fidelity scorecard" in text or "scorecard" in text.lower()

    def test_diff_unknown_ref_is_an_error(self, capsys):
        assert main(["diff", "no-such-ref"]) == 2
        assert "registry" in capsys.readouterr().err.lower()
