"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "KM", "apres", "--scale", "0.1"])
        assert args.app == "KM"
        assert args.config == "apres"
        assert args.scale == 0.1

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE", "base"])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "KM", "nope"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "KMeans" in out
        assert "apres" in out

    def test_run(self, capsys):
        assert main(["run", "KM", "base", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "L1 miss rate" in out

    def test_compare(self, capsys):
        assert main(["compare", "KM", "laws", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "laws" in out
        assert "Speedup" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "KM", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "0xE8" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "724" in out

    def test_figure12(self, capsys):
        assert main(["figure", "12", "--scale", "0.05", "--apps", "KM"]) == 0
        out = capsys.readouterr().out
        assert "apres" in out

    def test_figure2(self, capsys):
        assert main(["figure", "2", "--scale", "0.05", "--apps", "KM"]) == 0
        out = capsys.readouterr().out
        assert "Cap+Conf" in out
