"""Lock-step (``epoch_cycles=1``) sharded execution is bit-identical to serial.

The acceptance bar for the epoch-barrier engine: for every point in the
smoke matrix, ``--shards N --epoch-cycles 1`` must reproduce the serial
engine's ``SimStats`` exactly — every counter, including tick-sensitive
stall attribution — plus the engine-event count, and consequently file
under the *same* registry run id with the same payload hash.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.registry.records import content_hash, run_record
from repro.shard import DEFAULT_EPOCH_CYCLES, ShardPlan, shard_execute
from repro.sm.simulator import simulate
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

#: Scheduler×prefetcher cross-section: the baseline, the paper's coupled
#: engine, and one representative per scheduler family with a prefetcher.
SMOKE_CONFIGS = ("base", "apres", "gto+str", "ccws+mta", "laws+sld")

#: Irregular (BFS), thrashing (KM) — the shapes that stress the barrier.
SMOKE_WORKLOADS = ("BFS", "KM")

SMOKE_SCALE = 0.05


def _simulate_both(workload_abbr: str, config_name: str, num_sms: int,
                   shards: int, backend: str = "inproc"):
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=num_sms)
    kernel = build_kernel(workload(workload_abbr), SMOKE_SCALE)
    engine = CONFIGS[config_name]
    serial = simulate(kernel, cfg, engine.build)
    plan = ShardPlan(num_shards=shards, epoch_cycles=1, backend=backend)
    sharded, info = shard_execute(kernel, cfg, engine.build, plan)
    return serial, sharded, info


@pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
@pytest.mark.parametrize("workload_abbr", SMOKE_WORKLOADS)
def test_lockstep_bit_identical_across_smoke_matrix(workload_abbr, config_name):
    serial, sharded, info = _simulate_both(workload_abbr, config_name,
                                           num_sms=2, shards=2)
    assert info["bit_exact"] is True
    assert sharded.stats.as_dict() == serial.stats.as_dict()
    assert sharded.engine_events == serial.engine_events


def test_lockstep_identical_with_uneven_shard_split():
    # 3 shards over 4 SMs: groups of 2/1/1 — the merge order must not
    # depend on how SMs are grouped.
    serial, sharded, _ = _simulate_both("BFS", "apres", num_sms=4, shards=3)
    assert sharded.stats.as_dict() == serial.stats.as_dict()


def test_lockstep_identical_through_process_backend():
    serial, sharded, info = _simulate_both("KM", "apres", num_sms=2,
                                           shards=2, backend="process")
    assert sharded.stats.as_dict() == serial.stats.as_dict()
    assert info["attempts"] == 1 and not info["degraded"]


def test_lockstep_registry_record_matches_serial_run_id_and_payload():
    from repro.experiments import runner

    runner.clear_cache()
    serial = runner.run("KM", "apres", scale=SMOKE_SCALE, shard_plan=None)
    runner.clear_cache()
    sharded = runner.run("KM", "apres", scale=SMOKE_SCALE,
                         shard_plan=ShardPlan(2, 1))
    cfg = experiment_gpu_config()
    rec_serial = run_record(serial, SMOKE_SCALE, cfg)
    rec_sharded = run_record(sharded, SMOKE_SCALE, cfg,
                             engine_tag=ShardPlan(2, 1).identity_tag)
    # Lock-step shares the serial lineage: same run id, same payload hash.
    assert ShardPlan(2, 1).identity_tag is None
    assert rec_sharded.run_id == rec_serial.run_id
    payload = lambda r: content_hash(  # noqa: E731 - tiny local helper
        {"metrics": r.metrics, "data": r.data}
    )
    assert payload(rec_sharded) == payload(rec_serial)


def test_lockstep_and_serial_share_runner_cache_key():
    from repro.experiments.runner import cache_key

    assert cache_key("KM", "apres", 0.1, None, ShardPlan(4, 1)) == \
        cache_key("KM", "apres", 0.1, None, None)
    relaxed = cache_key("KM", "apres", 0.1, None,
                        ShardPlan(4, DEFAULT_EPOCH_CYCLES))
    assert relaxed != cache_key("KM", "apres", 0.1, None, None)
    assert relaxed[-1] == f"shard4xE{DEFAULT_EPOCH_CYCLES}"


class TestRejectUnsupported:
    """The unsupported set narrowed to checkpointing: telemetry flags
    combine with shard plans since the distributed-telemetry merge."""

    def test_nothing_truthy_passes(self):
        from repro.shard import reject_unsupported

        reject_unsupported(ShardPlan(2, 1))
        reject_unsupported(ShardPlan(2, 1), checkpoint=False)

    def test_serial_plan_is_never_rejected(self):
        from repro.shard import reject_unsupported

        reject_unsupported(None, checkpoint=True)

    def test_checkpoint_under_shards_is_rejected_and_names_lifted_flags(self):
        from repro.errors import ShardConfigError
        from repro.shard import reject_unsupported

        with pytest.raises(ShardConfigError) as excinfo:
            reject_unsupported(ShardPlan(2, 64), checkpoint=True)
        message = str(excinfo.value)
        assert "checkpoint" in message
        # The error advertises what this PR lifted, for stale muscle memory.
        assert "--telemetry/--trace-out/--intervals-out ARE supported" in message


def test_relaxed_records_get_their_own_identity():
    from repro.experiments import runner

    runner.clear_cache()
    plan = ShardPlan(2, DEFAULT_EPOCH_CYCLES)
    result = runner.run("KM", "apres", scale=SMOKE_SCALE, shard_plan=plan)
    cfg = experiment_gpu_config()
    record = run_record(result, SMOKE_SCALE, cfg, engine_tag=plan.identity_tag)
    assert record.identity["engine"] == f"shard2xE{DEFAULT_EPOCH_CYCLES}"
    serial_record = run_record(
        runner.run("KM", "apres", scale=SMOKE_SCALE, shard_plan=None),
        SMOKE_SCALE, cfg)
    assert record.run_id != serial_record.run_id
    assert record.data["shard"]["bit_exact"] is False
