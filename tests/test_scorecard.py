"""Paper-fidelity scorecard: hand-checked math, payload schema, CLI gate.

Every fidelity metric (MAPE, geomean delta, Spearman) is verified against
hand-computed fixtures, and the drift test proves the property CI relies
on: ``repro diff`` exits nonzero when a scorecard moves out of tolerance.
"""

import json
import math

import pytest

from repro.cli import main
from repro.experiments import paper_data
from repro.registry.scorecard import (
    DEFAULT_SCORECARD_FIGURES,
    format_scorecard,
    geomean,
    mape,
    score_figure,
    score_series,
    scorecard,
    spearman,
)


class TestGeomean:
    def test_hand_computed(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_non_positive_values_are_dropped(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)


class TestMape:
    def test_hand_computed(self):
        # |1.1-1|/1 = 10%, |1.8-2|/2 = 10% -> mean 10%.
        assert mape([1.0, 2.0], [1.1, 1.8]) == pytest.approx(10.0)

    def test_zero_golden_terms_are_skipped(self):
        assert mape([0.0, 2.0], [5.0, 2.0]) == pytest.approx(0.0)

    def test_all_zero_golden_is_undefined(self):
        assert mape([0.0, 0.0], [1.0, 2.0]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            mape([1.0], [1.0, 2.0])


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_use_average_ranks(self):
        # ranks x = [1, 2.5, 2.5, 4], y = [1, 2, 3, 4]:
        # rho = 4.5 / sqrt(4.5 * 5) = sqrt(0.9).
        rho = spearman([1.0, 2.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
        assert rho == pytest.approx(math.sqrt(0.9))

    def test_short_series_is_undefined(self):
        assert spearman([1, 2], [1, 2]) is None

    def test_zero_variance_is_undefined(self):
        assert spearman([1, 1, 1], [1, 2, 3]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            spearman([1, 2, 3], [1, 2])


class TestScoreSeries:
    GOLDEN = {"A": 1.0, "B": 2.0, "C": 4.0}

    def test_hand_computed_alignment(self):
        measured = {"A": 1.1, "B": 1.8, "C": 4.0, "D": 9.0}  # D: no golden
        score = score_series("figure10", "apres", self.GOLDEN, measured)
        assert score.n_apps == 3
        assert score.mape_pct == pytest.approx(100 * (0.1 + 0.1 + 0.0) / 3)
        assert score.geomean_golden == pytest.approx(2.0)  # (1*2*4)^(1/3)
        assert score.geomean_measured == pytest.approx((1.1 * 1.8 * 4.0) ** (1 / 3))
        assert score.geomean_delta == pytest.approx(
            score.geomean_measured - 2.0)
        assert score.spearman == pytest.approx(1.0)
        assert score.per_app["B"] == {"golden": 2.0, "measured": 1.8}

    def test_disjoint_series_scores_nothing(self):
        score = score_series("figure10", "apres", self.GOLDEN, {"Z": 1.0})
        assert score.n_apps == 0
        assert score.mape_pct is None
        assert score.spearman is None
        assert score.geomean_measured == 0.0


class TestScoreFigure:
    def test_injected_measurements_bypass_simulation(self):
        golden = paper_data.GOLDEN["figure10"]["apres"]
        measured = {"apres": {app: value * 1.1 for app, value in golden.items()}}
        score = score_figure("figure10", measured=measured)
        assert [s.series for s in score.series] == ["apres"]
        series = score.series[0]
        assert series.mape_pct == pytest.approx(10.0)
        assert series.spearman == pytest.approx(1.0)
        assert series.geomean_delta == pytest.approx(
            0.1 * series.geomean_golden)

    def test_figure_aggregates_average_the_series(self):
        measured = {
            name: dict(per_app)
            for name, per_app in paper_data.GOLDEN["figure10"].items()
        }
        score = score_figure("figure10", measured=measured)
        assert len(score.series) == len(paper_data.GOLDEN["figure10"])
        assert score.mape_pct == pytest.approx(0.0)
        assert score.spearman == pytest.approx(1.0)
        assert score.geomean_delta == pytest.approx(0.0)


def golden_payload(perturb=1.0):
    """Scorecard built from the paper's own numbers (scaled by ``perturb``)."""
    measured = {
        "figure10": {
            series: {app: value * perturb for app, value in per_app.items()}
            for series, per_app in paper_data.GOLDEN["figure10"].items()
        }
    }
    return scorecard(figures=["figure10"], measured=measured)


class TestScorecardPayload:
    def test_schema_and_summary(self):
        payload = golden_payload()
        assert payload["schema"] == 1
        assert payload["apps"] is None
        assert set(payload["figures"]) == {"figure10"}
        assert payload["summary"]["mean_mape_pct"] == pytest.approx(0.0)
        assert payload["summary"]["mean_spearman"] == pytest.approx(1.0)
        assert payload["summary"]["mean_abs_geomean_delta"] == pytest.approx(0.0)

    def test_default_figures_are_the_paper_headline(self):
        assert DEFAULT_SCORECARD_FIGURES == (
            "figure10", "figure11", "figure12", "figure13", "figure14",
            "figure15",
        )
        assert set(DEFAULT_SCORECARD_FIGURES) <= set(paper_data.GOLDEN)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown scorecard figure"):
            scorecard(figures=["figure99"])

    def test_format_renders_every_series(self):
        text = format_scorecard(golden_payload())
        assert "Paper-fidelity scorecard" in text
        assert "figure10" in text
        for series in paper_data.GOLDEN["figure10"]:
            assert series in text
        assert "mean Spearman" in text


class TestCLIGate:
    """The property CI's bench-regression job relies on."""

    def write(self, path, perturb=1.0):
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(golden_payload(perturb), fh)
        return str(path)

    def test_identical_scorecards_pass(self, tmp_path, capsys):
        a = self.write(tmp_path / "a.json")
        b = self.write(tmp_path / "b.json")
        assert main(["diff", a, b]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_drift_exits_nonzero(self, tmp_path, capsys):
        a = self.write(tmp_path / "a.json")
        b = self.write(tmp_path / "b.json", perturb=1.5)
        assert main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "figure10" in out

    def test_tolerance_override_can_absorb_the_drift(self, tmp_path):
        a = self.write(tmp_path / "a.json")
        b = self.write(tmp_path / "b.json", perturb=1.5)
        assert main(["diff", a, b, "--tolerance", "figure10*=3"]) == 1
        # mape and geomean_delta start at 0 (golden vs golden), so no
        # relative band can absorb them; ignoring those isolates the
        # value drift, which the widened band then absorbs.
        assert main([
            "diff", a, b, "--tolerance", "figure10*=3",
            "--ignore", "*mape*", "*geomean_delta*",
        ]) == 0

    def test_json_report_carries_the_verdict(self, tmp_path, capsys):
        a = self.write(tmp_path / "a.json")
        b = self.write(tmp_path / "b.json", perturb=1.5)
        assert main(["diff", a, b, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["failed"]

    def test_scorecard_json_reports_fidelity_triple(self, capsys):
        """Acceptance bar: MAPE, geomean delta and rank correlation per figure."""
        assert main([
            "scorecard", "--json", "--figures", "figure10",
            "--apps", "BFS", "KM", "LUD", "--scale", "0.05",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        figure = payload["figures"]["figure10"]
        assert set(figure) >= {"mape_pct", "geomean_delta", "spearman"}
        apres = figure["series"]["apres"]
        assert apres["n_apps"] == 3
        assert set(apres["per_app"]) == {"BFS", "KM", "LUD"}

    def test_scorecard_out_file_is_diffable(self, tmp_path, capsys):
        out = tmp_path / "card.json"
        assert main([
            "scorecard", "--json", "--out", str(out), "--figures", "figure10",
            "--apps", "BFS", "KM", "LUD", "--scale", "0.05",
        ]) == 0
        capsys.readouterr()
        assert main(["diff", str(out), str(out)]) == 0

    def test_unknown_figure_is_a_usage_error(self, capsys):
        assert main(["scorecard", "--figures", "figure99"]) == 2
        assert "unknown scorecard figure" in capsys.readouterr().err
