"""Table II hardware cost model."""

from repro.config import APRESConfig, CacheConfig
from repro.core.cost import hardware_cost


class TestTable2:
    def test_paper_totals(self):
        cost = hardware_cost()
        assert cost.llt_bytes == 4 * 48 == 192
        assert cost.wgt_bytes == 18  # 3 x 48 bits
        assert cost.laws_bytes == 210
        assert cost.drq_bytes == 8 * 32 == 256
        assert cost.wq_bytes == 48
        assert cost.pt_bytes == 21 * 10 == 210
        assert cost.sap_bytes == 514
        assert cost.total_bytes == 724

    def test_fraction_of_l1(self):
        cost = hardware_cost()
        l1 = CacheConfig(size_bytes=32 * 1024, associativity=8)
        frac = cost.fraction_of_cache(l1)
        assert 0.02 < frac < 0.025  # paper reports 2.06% including CACTI overheads

    def test_scales_with_geometry(self):
        small = hardware_cost(APRESConfig(pt_entries=5), max_warps=48)
        assert small.pt_bytes == 105
        fewer_warps = hardware_cost(max_warps=24)
        assert fewer_warps.llt_bytes == 96
        assert fewer_warps.wgt_bytes == 9

    def test_wgt_rounds_up_to_bytes(self):
        odd = hardware_cost(APRESConfig(wgt_entries=1), max_warps=3)
        assert odd.wgt_bytes == 1
