"""MTA per-warp stride prefetcher."""

import pytest

from repro.mem.request import LoadAccess
from repro.prefetch.mta import MTAPrefetcher


def access(pc, addr, warp=0):
    return LoadAccess(0, warp, pc, addr, (addr - addr % 128,), False, 0)


class TestMTA:
    def test_confirmation_then_fire(self):
        p = MTAPrefetcher(degree=2)
        assert p.observe_load(access(0x10, 0)) == []
        assert p.observe_load(access(0x10, 4096)) == []
        out = p.observe_load(access(0x10, 8192))
        assert [c.addr for c in out] == [12288, 16384]
        assert all(c.target_warp == 0 for c in out)

    def test_streams_are_per_warp(self):
        p = MTAPrefetcher(degree=1)
        for addr in (0, 4096, 8192):
            p.observe_load(access(0x10, addr, warp=0))
        # Warp 1 interleaved on the same PC does not disturb warp 0.
        assert p.observe_load(access(0x10, 999, warp=1)) == []
        out = p.observe_load(access(0x10, 12288, warp=0))
        assert [c.addr for c in out] == [16384]

    def test_survives_greedy_interleaving(self):
        """STR's per-PC entry is destroyed by greedy warp interleaving;
        MTA is not — the reason it exists."""
        p = MTAPrefetcher(degree=1)
        fired = []
        for i in range(4):
            for w in (0, 1):
                fired += p.observe_load(access(0x10, w * 1_000_000 + i * 128, warp=w))
        assert fired  # both warps' streams confirm

    def test_zero_stride_suppressed(self):
        p = MTAPrefetcher(degree=1)
        for _ in range(4):
            out = p.observe_load(access(0x10, 512))
        assert out == []

    def test_capacity_lru(self):
        p = MTAPrefetcher(table_entries=2, degree=1)
        p.observe_load(access(0x10, 0, warp=0))
        p.observe_load(access(0x10, 0, warp=1))
        p.observe_load(access(0x10, 0, warp=2))  # evicts warp 0's stream
        assert p.stride_for(0x10, 0) is None

    def test_reset(self):
        p = MTAPrefetcher()
        p.observe_load(access(0x10, 0))
        p.observe_load(access(0x10, 128))
        p.reset(8)
        assert p.stride_for(0x10, 0) is None

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            MTAPrefetcher(degree=0)
