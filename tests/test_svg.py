"""SVG chart rendering."""

import pytest

from repro.experiments.runner import clear_cache
from repro.experiments.svg import grouped_bar_chart, render_figure, save_chart

DATA = {
    "base": {"KM": 1.0, "LUD": 1.0},
    "apres": {"KM": 1.02, "LUD": 1.39},
}


class TestGroupedBarChart:
    def test_valid_svg_document(self):
        svg = grouped_bar_chart(DATA, title="t")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_one_bar_per_series_category(self):
        svg = grouped_bar_chart(DATA)
        assert svg.count("<rect") == 4 + len(DATA)  # bars + legend swatches

    def test_titles_embed_values(self):
        svg = grouped_bar_chart(DATA)
        assert "apres / LUD: 1.390" in svg

    def test_escapes_markup(self):
        svg = grouped_bar_chart({"a<b": {"x&y": 1.0}}, title="<t>")
        assert "a&lt;b" in svg
        assert "x&amp;y" in svg
        assert "&lt;t&gt;" in svg

    def test_baseline_reference_line(self):
        svg = grouped_bar_chart(DATA, baseline=1.0)
        assert "stroke-dasharray" in svg

    def test_no_baseline(self):
        svg = grouped_bar_chart(DATA, baseline=None)
        assert "stroke-dasharray" not in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})

    def test_zero_values_ok(self):
        svg = grouped_bar_chart({"s": {"a": 0.0}})
        assert "<rect" in svg


class TestSaveAndRender:
    def test_save_chart(self, tmp_path):
        path = save_chart(DATA, tmp_path / "c.svg", title="t")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_render_figure(self, tmp_path):
        clear_cache()
        path = render_figure("figure12", tmp_path, apps=["KM"], scale=0.05)
        assert path.name == "figure12.svg"
        assert "apres" in path.read_text()
        clear_cache()

    def test_render_unknown(self, tmp_path):
        with pytest.raises(ValueError, match="unknown chart"):
            render_figure("figure99", tmp_path)
