"""Statistics counters and the energy model."""

from repro.stats.counters import CacheStats, MemoryStats, SimStats
from repro.stats.energy import EnergyCosts, EnergyModel


class TestCacheStats:
    def test_ratios_zero_when_empty(self):
        s = CacheStats()
        assert s.miss_rate == 0.0
        assert s.hit_rate == 0.0
        assert s.early_eviction_ratio == 0.0

    def test_miss_rate(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.miss_rate == 0.3
        assert s.hit_rate == 0.7

    def test_breakdown_ratios(self):
        s = CacheStats(accesses=10, misses=4, cold_misses=1, capacity_conflict_misses=3)
        assert s.cold_miss_ratio == 0.1
        assert s.capacity_conflict_ratio == 0.3

    def test_early_eviction_ratio_definition(self):
        s = CacheStats(prefetch_useful=6, prefetch_demand_merged=2,
                       prefetch_early_evicted=2)
        assert s.early_eviction_ratio == 0.2

    def test_merge_accumulates(self):
        a = CacheStats(accesses=5, hits=3, misses=2)
        b = CacheStats(accesses=10, hits=1, misses=9)
        a.merge(b)
        assert a.accesses == 15
        assert a.hits == 4
        assert a.misses == 11


class TestMemoryStats:
    def test_avg_latency(self):
        m = MemoryStats(demand_latency_sum=300, demand_latency_count=3)
        assert m.avg_demand_latency == 100

    def test_avg_latency_empty(self):
        assert MemoryStats().avg_demand_latency == 0.0

    def test_total_traffic(self):
        m = MemoryStats(bytes_l2_to_l1=1000, bytes_stored=500)
        assert m.total_traffic_bytes == 1500


class TestSimStats:
    def test_ipc(self):
        s = SimStats(cycles=100, instructions=50)
        assert s.ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0


class TestEnergyModel:
    def test_zero_run_zero_energy(self):
        report = EnergyModel().report(SimStats())
        assert report.total == 0.0

    def test_dram_dominates_memory_heavy_runs(self):
        s = SimStats(cycles=100, instructions=100, alu_instructions=50)
        s.memory.dram_requests = 1000
        report = EnergyModel().report(s)
        assert report.dram > report.core
        assert report.dram > report.l1 + report.l2

    def test_apres_events_are_cheap(self):
        s = SimStats(cycles=10_000, instructions=10_000, alu_instructions=5000)
        s.l1.accesses = 5000
        s.memory.l2_accesses = 2000
        s.memory.dram_requests = 1000
        with_apres = EnergyModel().report(s, apres_events=10_000)
        without = EnergyModel().report(s, apres_events=0)
        overhead = (with_apres.total - without.total) / without.total
        assert overhead < 0.03  # the paper bounds APRES's energy adder at 3%

    def test_custom_costs(self):
        costs = EnergyCosts(alu_op=1.0, issue=0.0, sm_cycle=0.0)
        s = SimStats(alu_instructions=10)
        report = EnergyModel(costs).report(s)
        assert report.core == 10.0

    def test_total_is_sum_of_parts(self):
        s = SimStats(cycles=10, instructions=10, alu_instructions=5)
        s.l1.accesses = 7
        s.memory.l2_accesses = 3
        s.memory.dram_requests = 2
        r = EnergyModel().report(s, apres_events=4)
        assert abs(r.total - (r.core + r.l1 + r.l2 + r.dram + r.apres)) < 1e-9
