"""Sampled simulation: plans, clustering, estimator and isolation.

The properties pinned here are the ones the sampled executor's claims
rest on: deterministic representative selection (across hash seeds and
worker pools), an estimate that is internally consistent and never
aliases a full run in any cache, and error bars that widen honestly when
the clustering is made unrepresentative on purpose.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SamplingConfigError
from repro.experiments import runner
from repro.experiments.configs import experiment_gpu_config
from repro.integrity.checkpoint import CheckpointSeries
from repro.sampling import (
    ProfileStore,
    SamplingPlan,
    kmedoids,
    reject_unsupported,
    sampled_run,
    set_default_store,
    verify_estimate,
    zscore,
)
from repro.sm.simulator import GPUSimulator
from repro.workloads import build_kernel, workload

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: One small real point used throughout: fast, but long enough to tile
#: into enough intervals for the auto cluster policy to pick several.
POINT = ("BFS", "base", 0.1)


@pytest.fixture(autouse=True)
def _isolated_profiles(tmp_path, monkeypatch):
    """Keep profile blobs out of the working tree and other tests."""
    monkeypatch.setenv("REPRO_SAMPLE_PROFILE_DIR", str(tmp_path / "profiles"))
    set_default_store(None)
    runner.clear_cache()
    yield
    set_default_store(None)
    runner.clear_cache()


@pytest.fixture(scope="module")
def gpu_config():
    return experiment_gpu_config()


def _sampled(plan=None, store=None, point=POINT):
    app, config, scale = point
    return sampled_run(app, config, scale, experiment_gpu_config(),
                       plan or SamplingPlan(), store=store)


def _full_stats(point=POINT):
    app, config, scale = point
    from repro.experiments.configs import CONFIGS

    kernel = build_kernel(workload(app), scale)
    return GPUSimulator(kernel, experiment_gpu_config(),
                        CONFIGS[config].build).run().stats


class TestSamplingPlan:
    def test_validation(self):
        with pytest.raises(SamplingConfigError):
            SamplingPlan(interval_cycles=0)
        with pytest.raises(SamplingConfigError):
            SamplingPlan(warmup_cycles=-1)
        with pytest.raises(SamplingConfigError):
            SamplingPlan(clusters=0)

    def test_identity_tag_distinguishes_plans(self):
        tags = {
            SamplingPlan().identity_tag,
            SamplingPlan(interval_cycles=100).identity_tag,
            SamplingPlan(warmup_cycles=50).identity_tag,
            SamplingPlan(clusters=4).identity_tag,
        }
        assert len(tags) == 4

    def test_resolve_clusters_auto_and_explicit(self):
        plan = SamplingPlan()
        assert plan.resolve_clusters(120) == 10  # one per 12 intervals
        assert plan.resolve_clusters(5) == 1     # floor, never zero
        assert plan.resolve_clusters(10_000) == 64  # cost backstop
        assert SamplingPlan(clusters=8).resolve_clusters(3) == 3  # clamp
        with pytest.raises(SamplingConfigError):
            plan.resolve_clusters(0)

    def test_reject_unsupported_combinations(self):
        plan = SamplingPlan()
        reject_unsupported(plan)  # alone: fine
        with pytest.raises(SamplingConfigError):
            reject_unsupported(plan, telemetry=True)
        with pytest.raises(SamplingConfigError):
            reject_unsupported(plan, sharded=True)


class TestClustering:
    def test_partition_is_exact(self):
        vectors = [(float(i % 4), float(i // 4)) for i in range(23)]
        clusters = kmedoids(zscore(vectors), 5)
        seen = sorted(i for c in clusters for i in c.members)
        assert seen == list(range(23))
        for cluster in clusters:
            assert cluster.medoid in cluster.members

    def test_deterministic_across_calls(self):
        vectors = zscore([((i * 7) % 13 / 13.0, (i * 3) % 5 / 5.0)
                          for i in range(40)])
        assert kmedoids(vectors, 6) == kmedoids(vectors, 6)

    def test_constant_feature_collapses(self):
        scored = zscore([(1.0, float(i)) for i in range(5)])
        assert all(v[0] == 0.0 for v in scored)


class TestCheckpointSeries:
    def test_thinning_doubles_stride_and_bounds_entries(self, gpu_config):
        kernel = build_kernel(workload("BFS"), 0.05)
        from repro.experiments.configs import CONFIGS

        sim = GPUSimulator(kernel, gpu_config, CONFIGS["base"].build)
        series = CheckpointSeries(max_entries=4)
        for index in range(10):
            series.offer(index, sim)
        assert len(series) <= 4
        assert series.stride > 1
        cycles = series.cycles()
        assert cycles == sorted(cycles)
        best = series.best_for(10**9)
        assert best is not None and best[0] == max(cycles)
        assert series.best_for(-1) is None


class TestSampledEstimate:
    def test_internally_consistent_and_structural(self):
        result, info = _sampled()
        assert verify_estimate(info) == []
        full = _full_stats()
        # Cycles are structural (profile ground truth), not extrapolated.
        assert result.stats.cycles == full.cycles
        assert info["total_cycles"] == full.cycles
        # The issue/stall partition identity survives extrapolation.
        num_sms = info["num_sms"]
        assert (result.stats.instructions + result.stats.idle_cycles
                == full.cycles * num_sms)
        assert info["detailed_cycles"] < full.cycles
        assert info["cycle_reduction"] > 1.0

    def test_bars_cover_actual_error(self):
        result, info = _sampled()
        full = _full_stats()
        actual = abs(result.stats.ipc - full.ipc)
        assert actual <= info["error_bars"]["ipc"]

    def test_weights_sum_to_one(self):
        _, info = _sampled()
        assert abs(sum(info["weights"]) - 1.0) < 1e-9
        assert len(info["weights"]) == info["clusters"]

    def test_deterministic_selection_and_estimates(self):
        _, first = _sampled()
        _, second = _sampled()
        assert first["weights"] == second["weights"]
        assert first["representatives"] == second["representatives"]
        assert first["estimates"] == second["estimates"]

    def test_warmup_changes_accounting_not_estimates(self):
        _, plain = _sampled(SamplingPlan())
        _, warmed = _sampled(SamplingPlan(warmup_cycles=100))
        # Warmup re-simulates more unmeasured cycles but restores the
        # same bit-identical state, so the measured deltas are identical.
        assert warmed["estimates"] == plain["estimates"]
        assert warmed["detailed_cycles"] >= plain["detailed_cycles"]

    def test_profile_store_roundtrip(self, tmp_path):
        root = tmp_path / "store"
        _, first = _sampled(store=ProfileStore(str(root)))
        assert first["profile"]["cached"] is False
        # A fresh store instance must reload the persisted profile and
        # checkpoints from disk and reproduce the estimate exactly.
        _, second = _sampled(store=ProfileStore(str(root)))
        assert second["profile"]["cached"] is True
        assert second["estimates"] == first["estimates"]
        assert second["representatives"] == first["representatives"]

    def test_unrepresentative_clustering_widens_bars(self):
        _, auto = _sampled(SamplingPlan())
        _, lumped = _sampled(SamplingPlan(clusters=1))
        assert auto["clusters"] > 1
        assert lumped["clusters"] == 1
        # Forcing every phase into one cluster must report the damage:
        # the dispersion bar widens instead of feigning confidence, and
        # it still covers the actual error against the full run.
        assert lumped["error_bars"]["ipc"] > auto["error_bars"]["ipc"]
        full = _full_stats()
        est_ipc = lumped["estimates"]["ipc"]
        assert abs(est_ipc - full.ipc) <= lumped["error_bars"]["ipc"]


class TestVerifyEstimateNegative:
    def test_corrupted_weight_vector_trips(self):
        _, info = _sampled()
        corrupted = json.loads(json.dumps(info))
        corrupted["weights"][0] *= 1.5
        assert verify_estimate(corrupted)

    def test_tampered_estimate_trips(self):
        _, info = _sampled()
        corrupted = json.loads(json.dumps(info))
        corrupted["estimates"]["instructions"] += 10_000
        assert verify_estimate(corrupted)

    def test_truncated_weights_trip(self):
        _, info = _sampled()
        corrupted = json.loads(json.dumps(info))
        corrupted["weights"] = corrupted["weights"][:-1]
        assert verify_estimate(corrupted)

    def test_negative_bar_trips(self):
        _, info = _sampled()
        corrupted = json.loads(json.dumps(info))
        corrupted["error_bars"]["ipc"] = -1.0
        assert verify_estimate(corrupted)


class TestRunnerIsolation:
    def test_sampled_and_full_never_share_cache_keys(self, gpu_config):
        app, config, scale = POINT
        plan = SamplingPlan()
        full_key = runner.cache_key(app, config, scale, gpu_config,
                                    sampling_plan=None)
        sampled_key = runner.cache_key(app, config, scale, gpu_config,
                                       sampling_plan=plan)
        assert full_key != sampled_key
        other = runner.cache_key(app, config, scale, gpu_config,
                                 sampling_plan=SamplingPlan(clusters=3))
        assert other not in (full_key, sampled_key)

    def test_full_run_does_not_replay_as_sampled(self, gpu_config):
        app, config, scale = POINT
        runner.run(app, config, scale, gpu_config, sampling_plan=None)
        assert not runner.is_cached(app, config, scale, gpu_config,
                                    sampling_plan=SamplingPlan())
        sampled = runner.run(app, config, scale, gpu_config,
                             sampling_plan=SamplingPlan())
        assert sampled.sampling_info is not None
        # ... and the sampled result did not overwrite the full entry.
        full = runner.run(app, config, scale, gpu_config, sampling_plan=None)
        assert full.sampling_info is None

    def test_default_plan_routes_plain_run_calls(self, gpu_config):
        app, config, scale = POINT
        runner.set_default_sampling_plan(SamplingPlan())
        try:
            result = runner.run(app, config, scale, gpu_config)
        finally:
            runner.set_default_sampling_plan(None)
        assert result.sampling_info is not None
        # With the default cleared, the same call is a full run again.
        assert runner.run(app, config, scale,
                          gpu_config).sampling_info is None

    def test_telemetry_and_shards_rejected(self, gpu_config):
        from repro.shard import ShardPlan
        from repro.telemetry import TelemetryHub

        app, config, scale = POINT
        with pytest.raises(SamplingConfigError):
            runner.run(app, config, scale, gpu_config,
                       telemetry=TelemetryHub(),
                       sampling_plan=SamplingPlan())
        with pytest.raises(SamplingConfigError):
            runner.run(app, config, scale, gpu_config,
                       shard_plan=ShardPlan(2, 1),
                       sampling_plan=SamplingPlan())


class TestRegistryIdentity:
    def test_sampled_record_gets_its_own_lineage(self, gpu_config):
        from repro.registry.records import run_record

        app, config, scale = POINT
        full = runner.run(app, config, scale, gpu_config, sampling_plan=None)
        sampled = runner.run(app, config, scale, gpu_config,
                             sampling_plan=SamplingPlan())
        rec_full = run_record(full, scale, gpu_config)
        rec_sampled = run_record(sampled, scale, gpu_config)
        assert rec_full.run_id != rec_sampled.run_id
        assert rec_sampled.data["sampling"]["error_bars"]["ipc"] >= 0
        # Different plans are different estimators, hence lineages.
        other = runner.run(app, config, scale, gpu_config,
                           sampling_plan=SamplingPlan(clusters=2))
        assert run_record(other, scale,
                          gpu_config).run_id != rec_sampled.run_id

    def test_diff_bars_absorb_sampled_uncertainty(self):
        from repro.registry.diffing import diff_metrics

        a = {"ipc": 1.00, "cycles": 1000.0}
        b = {"ipc": 1.04, "cycles": 1000.0}
        tight = diff_metrics(a, b, rtol=0.001)
        assert not tight.ok
        with_bars = diff_metrics(a, b, rtol=0.001, bars={"ipc": 0.05})
        assert with_bars.ok
        # A disagreement beyond the stated bar still fails.
        beyond = diff_metrics(a, {"ipc": 1.10, "cycles": 1000.0},
                              rtol=0.001, bars={"ipc": 0.05})
        assert not beyond.ok


_HASH_SEED_SCRIPT = """
import json
from repro.experiments.configs import experiment_gpu_config
from repro.sampling import SamplingPlan, sampled_run

result, info = sampled_run("BFS", "base", 0.1, experiment_gpu_config(),
                           SamplingPlan())
print(json.dumps({
    "weights": info["weights"],
    "representatives": [r["interval"] for r in info["representatives"]],
    "estimates": info["estimates"],
    "stats": result.stats.as_dict(),
}, sort_keys=True))
"""


class TestHashRandomization:
    def test_selection_and_estimates_stable_across_hash_seeds(
            self, tmp_path):
        outputs = {}
        for seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = SRC_DIR
            # Fresh store per seed: determinism must come from the code,
            # not from one process reusing another's persisted profile.
            env["REPRO_SAMPLE_PROFILE_DIR"] = str(tmp_path / f"seed{seed}")
            proc = subprocess.run(
                [sys.executable, "-c", _HASH_SEED_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs[seed] = proc.stdout
        assert outputs["0"] == outputs["1"] == outputs["31337"]
        assert json.loads(outputs["0"])["weights"]


class TestSweepIntegration:
    def _sweep(self, tmp_path, name, jobs):
        from repro.experiments.sweep import SweepPoint, run_sweep

        points = [SweepPoint("BFS", "base", 0.1),
                  SweepPoint("KM", "base", 0.1)]
        out = tmp_path / f"{name}.jsonl"
        summary = run_sweep(points, str(out), jobs=jobs,
                            sampling_plan=SamplingPlan())
        assert summary.failed == 0
        records = {}
        with open(out, "r", encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                records[record["key"]] = record
        return records

    def test_serial_and_jobs2_records_identical(self, tmp_path):
        serial = self._sweep(tmp_path, "serial", jobs=1)
        parallel = self._sweep(tmp_path, "par", jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key]["sampling"] == parallel[key]["sampling"]
            assert serial[key]["stats"] == parallel[key]["stats"]
            assert serial[key]["ipc"] == parallel[key]["ipc"]

    def test_sampled_records_carry_provenance_identity(self, tmp_path):
        from repro.registry.records import sweep_point_identity

        records = self._sweep(tmp_path, "prov", jobs=1)
        record = records["BFS|base|0.1"]
        assert record["sampling"]["plan"]["interval_cycles"] == 200
        provenance = {"sampling": SamplingPlan().identity_tag}
        identity = sweep_point_identity("BFS", "base", 0.1, provenance)
        bare = sweep_point_identity("BFS", "base", 0.1, {})
        assert identity != bare
