"""Tag array LRU semantics, including a hypothesis model check."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.mem.tags import LineMeta, TagArray


def small_tags(sets=4, ways=2):
    cfg = CacheConfig(size_bytes=sets * ways * 128, associativity=ways)
    return TagArray(cfg), cfg


def line(set_idx, tag, num_sets=4):
    return (tag * num_sets + set_idx) * 128


class TestProbeInsert:
    def test_miss_on_empty(self):
        tags, _ = small_tags()
        assert tags.probe(0) is None

    def test_hit_after_insert(self):
        tags, _ = small_tags()
        tags.insert(0, LineMeta())
        assert tags.probe(0) is not None

    def test_insert_returns_victim_when_full(self):
        tags, _ = small_tags(sets=1, ways=2)
        assert tags.insert(line(0, 0, 1), LineMeta()) is None
        assert tags.insert(line(0, 1, 1), LineMeta()) is None
        victim = tags.insert(line(0, 2, 1), LineMeta())
        assert victim is not None
        assert victim[0] == line(0, 0, 1)

    def test_lru_promotion_on_probe(self):
        tags, _ = small_tags(sets=1, ways=2)
        a, b, c = line(0, 0, 1), line(0, 1, 1), line(0, 2, 1)
        tags.insert(a, LineMeta())
        tags.insert(b, LineMeta())
        tags.probe(a)  # promote a to MRU; b becomes LRU
        victim = tags.insert(c, LineMeta())
        assert victim[0] == b

    def test_probe_without_lru_update(self):
        tags, _ = small_tags(sets=1, ways=2)
        a, b, c = line(0, 0, 1), line(0, 1, 1), line(0, 2, 1)
        tags.insert(a, LineMeta())
        tags.insert(b, LineMeta())
        tags.probe(a, update_lru=False)
        victim = tags.insert(c, LineMeta())
        assert victim[0] == a

    def test_reinsert_resident_replaces_meta(self):
        tags, _ = small_tags()
        tags.insert(0, LineMeta(filler_warp=1))
        assert tags.insert(0, LineMeta(filler_warp=2)) is None
        assert tags.probe(0).filler_warp == 2
        assert tags.occupancy() == 1

    def test_sets_are_independent(self):
        tags, _ = small_tags(sets=4, ways=1)
        tags.insert(line(0, 0), LineMeta())
        tags.insert(line(1, 0), LineMeta())
        assert tags.occupancy() == 2
        assert tags.probe(line(0, 0)) is not None


class TestInvalidate:
    def test_invalidate_removes(self):
        tags, _ = small_tags()
        tags.insert(0, LineMeta())
        assert tags.invalidate(0) is not None
        assert tags.probe(0) is None

    def test_invalidate_missing_is_none(self):
        tags, _ = small_tags()
        assert tags.invalidate(128) is None


class TestResidentLines:
    def test_enumerates_all(self):
        tags, _ = small_tags()
        lines = {line(0, 0), line(1, 0), line(2, 1)}
        for addr in lines:
            tags.insert(addr, LineMeta())
        assert set(tags.resident_lines()) == lines


@settings(max_examples=200)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
def test_property_matches_reference_lru(accesses):
    """TagArray behaves exactly like a per-set OrderedDict LRU model."""
    sets, ways = 2, 4
    tags, _ = small_tags(sets=sets, ways=ways)
    model = [OrderedDict() for _ in range(sets)]
    for tag in accesses:
        addr = tag * 128
        s = (addr // 128) % sets
        if tags.probe(addr) is None:
            tags.insert(addr, LineMeta())
            if tag in model[s]:
                raise AssertionError("model hit but tags missed")
            if len(model[s]) >= ways:
                model[s].popitem(last=False)
            model[s][tag] = None
        else:
            assert tag in model[s]
            model[s].move_to_end(tag)
    for s in range(sets):
        resident = {a // 128 for a in tags.resident_lines() if (a // 128) % sets == s}
        assert resident == set(model[s])
