"""Shared L2 and DRAM timing: latency, queuing, pending-fill joins."""

from repro.config import CacheConfig, DRAMConfig
from repro.mem.dram import DRAMModel
from repro.mem.l2 import L2Cache
from repro.stats.counters import MemoryStats


def make_dram(partitions=2, latency=100, service=10):
    stats = MemoryStats()
    return DRAMModel(DRAMConfig(partitions, latency, service), 128, stats), stats


def make_l2(hit_latency=50, banks=2, service=0, size=4 * 1024):
    stats = MemoryStats()
    dram, _ = make_dram()
    cfg = CacheConfig(size_bytes=size, associativity=4, hit_latency=hit_latency,
                      num_banks=banks, service_cycles=service)
    return L2Cache(cfg, DRAMModel(DRAMConfig(2, 100, 10), 128, stats), stats), stats


class TestDRAM:
    def test_unloaded_latency(self):
        dram, _ = make_dram(latency=100)
        assert dram.request(0, now=5) == 105

    def test_same_partition_queues(self):
        dram, _ = make_dram(partitions=1, latency=100, service=10)
        assert dram.request(0, 0) == 100
        # Second request waits for the partition to free up.
        assert dram.request(128, 0) == 110

    def test_different_partitions_parallel(self):
        dram, _ = make_dram(partitions=4, latency=100, service=10)
        lines, times = [], []
        # Find lines mapping to distinct partitions via the hash.
        for i in range(64):
            if dram.partition_of(i * 128) not in [dram.partition_of(l) for l in lines]:
                lines.append(i * 128)
            if len(lines) == 2:
                break
        for line in lines:
            times.append(dram.request(line, 0))
        assert times == [100, 100]

    def test_traffic_counted(self):
        dram, stats = make_dram()
        dram.request(0, 0)
        dram.request(1024, 0)
        assert stats.dram_requests == 2
        assert stats.bytes_dram_to_l2 == 256

    def test_queue_delay_diagnostic(self):
        dram, _ = make_dram(partitions=1, service=10)
        assert dram.queue_delay(0, 0) == 0
        dram.request(0, 0)
        assert dram.queue_delay(0, 0) == 10

    def test_hashed_partitions_spread_large_power_of_two_strides(self):
        dram, _ = make_dram(partitions=6, latency=100, service=10)
        parts = {dram.partition_of(i * 6 * 128) for i in range(32)}
        assert len(parts) > 1  # a linear mapping would camp on one


class TestL2:
    def test_miss_goes_to_dram(self):
        l2, stats = make_l2()
        ready = l2.access(0, 0)
        assert ready == 100  # DRAM latency
        assert stats.l2_accesses == 1
        assert stats.l2_hits == 0

    def test_hit_after_fill_arrives(self):
        l2, stats = make_l2(hit_latency=50)
        l2.access(0, 0)             # miss; fill lands at 100
        ready = l2.access(0, 500)   # well after the fill
        assert ready == 550
        assert stats.l2_hits == 1

    def test_concurrent_miss_joins_pending_fill(self):
        l2, stats = make_l2()
        first = l2.access(0, 0)
        second = l2.access(0, 10)
        assert second == max(first, 10 + 50)
        assert stats.dram_requests == 1  # no duplicate DRAM read

    def test_bank_service_queues(self):
        l2, _ = make_l2(banks=1, service=8)
        l2.access(0, 0)
        # Resident after fill; two back-to-back hits serialise on the bank.
        t1 = l2.access(0, 1000)
        t2 = l2.access(0, 1000)
        assert t2 == t1 + 8

    def test_write_invalidates(self):
        l2, stats = make_l2()
        l2.access(0, 0)
        assert l2.contains(0) or True  # may still be pending
        l2.access(0, 500)  # commit the fill, now resident
        assert l2.contains(0)
        l2.write(0, 600)
        assert not l2.contains(0)

    def test_zero_service_is_unlimited(self):
        l2, _ = make_l2(banks=1, service=0)
        l2.access(0, 0)
        t1 = l2.access(0, 1000)
        t2 = l2.access(0, 1000)
        assert t1 == t2
