"""Trace recording, serialisation and trace-driven replay."""


from conftest import mixed_kernel, streaming_kernel
from repro.config import CacheConfig
from repro.prefetch.none import NullPrefetcher
from repro.sched.lrr import LRRScheduler
from repro.sm.simulator import simulate
from repro.trace import (
    TraceEvent,
    TraceRecorder,
    capacity_sweep,
    load_trace,
    replay_trace,
    save_trace,
)


def record(kernel, config):
    recorder = TraceRecorder()
    result = simulate(kernel, config, lambda: (LRRScheduler(), NullPrefetcher()),
                      load_observers=[recorder.observe])
    return recorder, result


class TestRecorder:
    def test_one_event_per_load(self, tiny_config):
        kernel = streaming_kernel(iterations=5)
        recorder, result = record(kernel, tiny_config)
        assert len(recorder) == result.stats.load_instructions

    def test_events_carry_pc_and_lines(self, tiny_config):
        recorder, _ = record(streaming_kernel(iterations=2), tiny_config)
        assert all(e.pc == 0x10 for e in recorder.events)
        assert all(len(e.line_addrs) >= 1 for e in recorder.events)

    def test_cycles_monotone_nondecreasing(self, tiny_config):
        recorder, _ = record(mixed_kernel(4), tiny_config)
        cycles = [e.cycle for e in recorder.events]
        assert cycles == sorted(cycles)

    def test_line_stream_filters_by_sm(self, two_sm_config):
        recorder, _ = record(streaming_kernel(iterations=3), two_sm_config)
        full = recorder.line_stream()
        sm0 = recorder.line_stream(sm_id=0)
        sm1 = recorder.line_stream(sm_id=1)
        assert len(full) == len(sm0) + len(sm1)
        assert sm0  # both SMs produced traffic
        assert sm1


class TestSerialisation:
    def test_roundtrip(self, tiny_config, tmp_path):
        recorder, _ = record(mixed_kernel(3), tiny_config)
        path = tmp_path / "run.trace.gz"
        count = save_trace(recorder.events, path)
        assert count == len(recorder)
        loaded = load_trace(path)
        assert loaded == recorder.events

    def test_roundtrip_preserves_types(self, tmp_path):
        event = TraceEvent(cycle=5, sm_id=0, warp_id=3, pc=0x10,
                           primary_addr=1 << 33, line_addrs=(128, 256),
                           primary_hit=True)
        path = tmp_path / "one.trace.gz"
        save_trace([event], path)
        (loaded,) = load_trace(path)
        assert loaded == event
        assert isinstance(loaded.line_addrs, tuple)


class TestReplay:
    def test_replay_matches_execution_for_streaming(self, tiny_config):
        """A stream with no reuse and no stores replays exactly."""
        kernel = streaming_kernel(iterations=6)
        recorder, result = record(kernel, tiny_config)
        replay = replay_trace(recorder.events, tiny_config.l1, sm_id=0)
        assert replay.accesses == result.stats.l1.accesses
        assert replay.misses == result.stats.l1.misses
        assert replay.cold_misses == result.stats.l1.cold_misses

    def test_replay_is_optimistic_about_inflight_merges(self, tiny_config):
        """Replay installs lines instantly, so accesses that merged into an
        in-flight MSHR (counted as misses in execution) replay as hits;
        stores (which invalidate in execution) are also invisible."""
        recorder, result = record(mixed_kernel(6), tiny_config)
        replay = replay_trace(recorder.events, tiny_config.l1, sm_id=0)
        assert replay.accesses == result.stats.l1.accesses
        assert replay.misses <= result.stats.l1.misses

    def test_bigger_cache_never_misses_more(self, tiny_config):
        recorder, _ = record(mixed_kernel(6), tiny_config)
        small = replay_trace(recorder.events, CacheConfig(4 * 1024, 4), sm_id=0)
        big = replay_trace(recorder.events, CacheConfig(64 * 1024, 4), sm_id=0)
        assert big.misses <= small.misses
        assert big.cold_misses == small.cold_misses  # cold is capacity-blind

    def test_capacity_sweep_monotone(self, tiny_config):
        recorder, _ = record(mixed_kernel(6), tiny_config)
        sweep = capacity_sweep(recorder.events, [2 * 1024, 8 * 1024, 32 * 1024])
        rates = [sweep[s].miss_rate for s in sorted(sweep)]
        assert rates == sorted(rates, reverse=True)

    def test_empty_trace(self):
        r = replay_trace([], CacheConfig(4 * 1024, 4))
        assert r.accesses == 0
        assert r.miss_rate == 0.0
