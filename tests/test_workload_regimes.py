"""Verify that each workload lands in the Table I regime it models.

These run the baseline at reduced scale with the profiler attached; they
pin down the *class* of each dominant load (thrashing / streaming /
high-locality) rather than exact numbers, so they stay robust to
recalibration while catching regressions that would invalidate the paper's
premises.
"""

import pytest

from repro.characterize.loads import LoadProfiler
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.sm.simulator import simulate
from repro.workloads import build_kernel, workload

SCALE = 0.25


@pytest.fixture(scope="module")
def profiles():
    """Characterise every memory-intensive app once (module-scoped: slow)."""
    out = {}
    cfg = experiment_gpu_config()
    for abbr in ("BFS", "MUM", "NW", "SPMV", "KM", "LUD", "SRAD", "PA", "BP"):
        profiler = LoadProfiler()
        kernel = build_kernel(workload(abbr), SCALE)
        simulate(kernel, cfg, CONFIGS["base"].build,
                 load_observers=[profiler.observe])
        out[abbr] = {r.pc: r for r in profiler.rows()}
    return out


class TestThrashingClass:
    def test_km_gap_between_llr_and_miss(self, profiles):
        km = profiles["KM"][0xE8]
        assert km.lines_per_ref < 0.3      # small ideal miss rate...
        assert km.miss_rate > 0.7          # ...but the real cache thrashes
        assert km.top_stride == 4352       # Table I stride

    def test_bfs_dominant_load_has_locality_but_misses(self, profiles):
        edges = profiles["BFS"][0x110]
        assert edges.lines_per_ref < 0.2
        assert edges.miss_rate > 0.3


class TestStreamingClass:
    def test_srad_sweeps(self, profiles):
        for pc in (0x250, 0x230):
            r = profiles["SRAD"][pc]
            assert r.lines_per_ref > 0.8
            assert r.miss_rate > 0.9
            assert r.top_stride == 16384
            assert r.pct_stride > 0.5

    def test_srad_center_rereads_its_line(self, profiles):
        center = profiles["SRAD"][0x350]
        assert 0.4 < center.lines_per_ref < 0.6

    def test_nw_huge_negative_stride(self, profiles):
        diag = profiles["NW"][0x490]
        assert diag.top_stride == -1_966_080
        assert diag.pct_stride > 0.5

    def test_lud_panels(self, profiles):
        panel = profiles["LUD"][0x20F0]
        assert panel.top_stride == 2048
        assert panel.pct_stride > 0.8

    def test_bp_layer_stride(self, profiles):
        hidden = profiles["BP"][0x408]
        assert hidden.top_stride == 128


class TestHighLocalityClass:
    def test_mum_tree_mostly_hits(self, profiles):
        tree = profiles["MUM"][0x7A8]
        assert tree.lines_per_ref < 0.1
        assert tree.miss_rate < 0.3

    def test_pa_broadcast_table(self, profiles):
        weights = profiles["PA"][0x2230]
        assert weights.lines_per_ref < 0.01
        assert weights.miss_rate < 0.3

    def test_lud_pivot_is_warp_invariant(self, profiles):
        pivot = profiles["LUD"][0x22E0]
        assert pivot.lines_per_ref < 0.05
        assert pivot.top_stride == 0

    def test_bp_reread_hits(self, profiles):
        """Table I: the 0x478 re-read has a 0.03 miss rate."""
        reread = profiles["BP"][0x478]
        first = profiles["BP"][0x3F8]
        assert reread.miss_rate < first.miss_rate


class TestLoadShares:
    def test_km_single_load_dominates(self, profiles):
        assert profiles["KM"][0xE8].pct_load > 0.6  # rest is the store

    def test_bfs_ordering_matches_table1(self, profiles):
        bfs = profiles["BFS"]
        assert bfs[0x110].pct_load > bfs[0xF0].pct_load > bfs[0x198].pct_load
