"""MSHR allocation, merging and release."""

import pytest

from repro.mem.mshr import MSHRFile


def make(entries=4, merge=2):
    return MSHRFile(entries, merge)


class TestAllocate:
    def test_allocate_and_lookup(self):
        m = make()
        e = m.allocate(0x100, now=5, prefetch_only=False)
        assert e is not None
        assert m.lookup(0x100) is e
        assert 0x100 in m
        assert len(m) == 1

    def test_allocate_duplicate_fails(self):
        m = make()
        m.allocate(0x100, 0, False)
        assert m.allocate(0x100, 1, False) is None

    def test_capacity(self):
        m = make(entries=2)
        assert m.allocate(0x100, 0, False)
        assert m.allocate(0x200, 0, False)
        assert m.full
        assert m.allocate(0x300, 0, False) is None

    def test_occupancy_ratio(self):
        m = make(entries=4)
        m.allocate(0x100, 0, False)
        assert m.occupancy_ratio == 0.25

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0, 1)


class TestMerge:
    def test_merge_records_issue_cycle_and_callback(self):
        m = make()
        e = m.allocate(0x100, 0, prefetch_only=False)
        hits = []
        assert m.merge_demand(e, 7, hits.append)
        assert e.demand_issue_cycles == [7]
        e.callbacks[0](99)
        assert hits == [99]

    def test_merge_limit(self):
        m = make(merge=2)
        e = m.allocate(0x100, 0, False)
        assert m.merge_demand(e, 1, None)
        assert m.merge_demand(e, 2, None)
        assert not m.can_merge(e)
        assert not m.merge_demand(e, 3, None)
        assert e.demand_issue_cycles == [1, 2]

    def test_demand_merge_clears_prefetch_flag(self):
        m = make()
        e = m.allocate(0x100, 0, prefetch_only=True)
        assert e.prefetch_only
        m.merge_demand(e, 5, None)
        assert not e.prefetch_only


class TestRelease:
    def test_release_frees_slot(self):
        m = make(entries=1)
        m.allocate(0x100, 0, False)
        assert m.full
        released = m.release(0x100)
        assert released.line_addr == 0x100
        assert not m.full
        assert m.lookup(0x100) is None

    def test_release_missing_raises(self):
        with pytest.raises(KeyError):
            make().release(0x500)
