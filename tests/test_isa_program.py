"""Kernel specifications."""

import pytest

from repro.errors import WorkloadError
from repro.isa.address import BroadcastAddress
from repro.isa.instructions import alu, load
from repro.isa.program import KernelSpec

GEN = BroadcastAddress(1 << 30, region_bytes=1024)


def body():
    return [load(0x10, GEN), alu(0x18), load(0x20, GEN), alu(0x28)]


class TestKernelSpec:
    def test_basic_fields(self):
        k = KernelSpec("k", body(), 5)
        assert k.name == "k"
        assert len(k.body) == 4
        assert k.iterations == 5
        assert k.waves == 1
        assert k.fresh_waves

    def test_instructions_per_warp(self):
        k = KernelSpec("k", body(), 5, waves=3)
        assert k.instructions_per_warp == 4 * 5 * 3

    def test_loads_unique_by_pc(self):
        dup = [load(0x10, GEN), load(0x10, GEN), load(0x20, GEN)]
        k = KernelSpec("k", dup, 1)
        assert [i.pc for i in k.loads] == [0x10, 0x20]

    def test_rejects_zero_iterations(self):
        with pytest.raises(WorkloadError):
            KernelSpec("k", body(), 0)

    def test_rejects_zero_waves(self):
        with pytest.raises(WorkloadError):
            KernelSpec("k", body(), 1, waves=0)

    def test_rejects_empty_body(self):
        with pytest.raises(WorkloadError):
            KernelSpec("k", [], 1)

    def test_scaled_rounds_and_floors_at_one(self):
        k = KernelSpec("k", body(), 10, waves=2, fresh_waves=False)
        assert k.scaled(0.5).iterations == 5
        assert k.scaled(0.01).iterations == 1
        assert k.scaled(0.5).waves == 2
        assert not k.scaled(0.5).fresh_waves

    def test_scaled_preserves_body(self):
        k = KernelSpec("k", body(), 10)
        assert k.scaled(2.0).body == k.body
