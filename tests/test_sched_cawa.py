"""CAWA criticality-aware scheduler."""

from conftest import make_config, streaming_kernel
from repro.prefetch.none import NullPrefetcher
from repro.sched.cawa import CAWAScheduler
from repro.sched.base import IssueCandidate
from repro.sm.simulator import simulate


def cands(*warps):
    return [IssueCandidate(w, False) for w in warps]


def make(n=4):
    s = CAWAScheduler()
    s.reset(n)
    return s


class TestSelection:
    def test_prefers_most_lagging(self):
        s = make()
        for _ in range(3):
            s.notify_issue(0, False, 0)
        s.notify_issue(1, False, 0)
        assert s.select(cands(0, 1, 2), 0) == 2  # retired 0

    def test_tie_breaks_by_warp_id(self):
        s = make()
        assert s.select(cands(3, 1), 0) == 1

    def test_empty(self):
        assert make().select([], 0) is None

    def test_criticality_metric(self):
        s = make()
        for _ in range(5):
            s.notify_issue(0, False, 0)
        s.notify_issue(2, False, 0)
        assert s.criticality(0) == 0
        assert s.criticality(2) == 4
        assert s.criticality(3) == 5

    def test_keeps_progress_balanced(self):
        s = make(n=3)
        for t in range(30):
            chosen = s.select(cands(0, 1, 2), t)
            s.notify_issue(chosen, False, t)
        spread = max(s._retired) - min(s._retired)
        assert spread <= 1

    def test_finished_warp_does_not_anchor_lag(self):
        s = make(n=3)
        for _ in range(10):
            s.notify_issue(0, False, 0)
        s.notify_warp_finished(0)
        s.notify_issue(1, False, 0)
        assert s.criticality(2) == 1  # measured against warp 1, not warp 0


class TestIntegration:
    def test_completes_kernel(self):
        cfg = make_config(max_warps=4)
        kernel = streaming_kernel(iterations=4)
        result = simulate(kernel, cfg, lambda: (CAWAScheduler(), NullPrefetcher()))
        assert result.stats.instructions == kernel.instructions_per_warp * 4
