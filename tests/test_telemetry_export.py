"""Exporter schemas: Chrome trace (golden file), interval JSONL, sinks.

The golden file pins the exact trace-event JSON a small deterministic run
produces. If an instrumentation change legitimately alters the trace,
regenerate the fixture and review the diff:

    PYTHONPATH=src:tests python tests/test_telemetry_export.py
"""

from __future__ import annotations

import io
import json
import pickle
from pathlib import Path

import pytest

from conftest import make_config, mixed_kernel, streaming_kernel
from repro.experiments.configs import CONFIGS
from repro.sm.simulator import simulate
from repro.telemetry import (
    INTERVAL_METRICS,
    HeartbeatSink,
    InMemorySink,
    IntervalJSONLWriter,
    TelemetryHub,
    validate_chrome_trace,
    validate_event_registry,
    validate_interval_record,
)

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "telemetry" / (
    "chrome_trace.golden.json"
)


def golden_run() -> tuple[TelemetryHub, object]:
    """The fixed tiny run the golden trace pins (fully deterministic)."""
    hub = TelemetryHub(window=200, trace=True)
    cfg = make_config(num_sms=1, max_warps=2)
    result = simulate(
        streaming_kernel(iterations=2), cfg, CONFIGS["apres"].build,
        telemetry=hub,
    )
    return hub, result


def bigger_run(**hub_kwargs) -> tuple[TelemetryHub, object]:
    hub = TelemetryHub(**hub_kwargs)
    cfg = make_config(num_sms=2)
    result = simulate(
        mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build, telemetry=hub
    )
    return hub, result


class TestChromeTraceGolden:
    def test_trace_matches_golden_exactly(self):
        hub, _result = golden_run()
        expected = json.loads(GOLDEN.read_text())
        assert hub.trace.build() == expected

    def test_golden_passes_schema_validation(self):
        assert validate_chrome_trace(json.loads(GOLDEN.read_text())) == []


class TestChromeTraceStructure:
    def test_real_run_validates_clean(self):
        hub, _result = bigger_run(trace=True, window=500)
        trace = hub.trace.build()
        assert trace["otherData"]["schema"] == "repro-telemetry-chrome-trace"
        assert validate_chrome_trace(trace) == []

    def test_flow_events_one_start_per_static_load(self):
        hub, _result = bigger_run(trace=True)
        events = hub.trace.build()["traceEvents"]
        flows = [e for e in events if e.get("cat") == "static_load"]
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        steps = [e for e in flows if e["ph"] == "t"]
        assert starts  # every static load opens exactly one flow chain
        assert len([e for e in flows if e["ph"] == "s"]) == len(starts)
        assert all(e["id"] in starts for e in steps)

    def test_counter_track_carries_interval_metrics(self):
        hub, _result = bigger_run(trace=True, window=300)
        events = hub.trace.build()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} == set(INTERVAL_METRICS)

    def test_topology_metadata_names_rows(self):
        hub, _result = bigger_run(trace=True)
        meta = [e for e in hub.trace.build()["traceEvents"] if e["ph"] == "M"]
        names = {
            e["args"].get("name") for e in meta if e["name"] == "process_name"
        }
        assert {"SM 0", "SM 1", "Memory", "Interval metrics"} <= names

    def test_validator_catches_malformed_traces(self):
        assert validate_chrome_trace([]) == ["trace is list, expected object"]
        base = {"otherData": {"schema": "repro-telemetry-chrome-trace"}}
        bad_ph = dict(base, traceEvents=[{"ph": "Z", "name": "x", "pid": 0}])
        assert any("unknown ph" in p for p in validate_chrome_trace(bad_ph))
        unbalanced = dict(base, traceEvents=[
            {"ph": "B", "name": "LOAD", "pid": 0, "tid": 1, "ts": 5},
        ])
        assert any("unclosed B" in p for p in validate_chrome_trace(unbalanced))
        stray_end = dict(base, traceEvents=[
            {"ph": "E", "name": "LOAD", "pid": 0, "tid": 1, "ts": 5},
        ])
        assert any(
            "E without matching B" in p for p in validate_chrome_trace(stray_end)
        )
        no_dur = dict(base, traceEvents=[
            {"ph": "X", "name": "ALU", "pid": 0, "tid": 0, "ts": 1},
        ])
        assert any("no numeric dur" in p for p in validate_chrome_trace(no_dur))


class TestIntervalRecords:
    def test_windows_tile_the_run_exactly(self):
        hub = TelemetryHub(window=400)
        sink = InMemorySink()
        hub.add_interval_sink(sink)
        cfg = make_config(num_sms=2)
        result = simulate(
            mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        records = sink.intervals
        assert records
        assert records[0]["cycle_start"] == 0
        for prev, cur in zip(records, records[1:]):
            assert cur["cycle_start"] == prev["cycle_end"]
        assert records[-1]["cycle_end"] == result.stats.cycles
        assert sink.final_cycle == result.stats.cycles
        for record in records:
            assert validate_interval_record(record) == []
        assert (
            sum(r["instructions"] for r in records)
            == result.stats.instructions
        )

    def test_load_characteristic_metrics_are_bounded_fractions(self):
        """The sampling-signature metrics: L2 miss rate and the
        exclusive-cause stall fractions are all in [0, 1], and the stall
        fractions — one exclusive cause per stalled SM-cycle — never sum
        past 1 within a window."""
        hub = TelemetryHub(window=400)
        sink = InMemorySink()
        hub.add_interval_sink(sink)
        cfg = make_config(num_sms=2)
        simulate(mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build,
                 telemetry=hub)
        stall_names = [n for n in INTERVAL_METRICS
                       if n.startswith("stall_frac_")]
        assert len(stall_names) == 6
        saw_stall = False
        for record in sink.intervals:
            assert 0.0 <= record["l2_miss_rate"] <= 1.0
            total = sum(record[name] for name in stall_names)
            assert 0.0 <= total <= 1.0 + 1e-9
            saw_stall = saw_stall or total > 0.0
        # The mixed kernel misses enough for some cause to show up.
        assert saw_stall

    def test_jsonl_writer_round_trips(self, tmp_path):
        out = tmp_path / "intervals.jsonl"
        hub = TelemetryHub(window=500)
        writer = IntervalJSONLWriter(str(out))
        hub.add_interval_sink(writer)
        cfg = make_config(num_sms=2)
        result = simulate(
            mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        lines = out.read_text().splitlines()
        assert len(lines) == writer.records_written > 0
        records = [json.loads(line) for line in lines]
        for record in records:
            assert validate_interval_record(record) == []
        assert records[-1]["cycle_end"] == result.stats.cycles

    def test_jsonl_writer_pickles_mid_run(self, tmp_path):
        writer = IntervalJSONLWriter(str(tmp_path / "x.jsonl"))
        writer.on_interval({"cycle_start": 0, "cycle_end": 1, "ipc": 0.5})
        clone = pickle.loads(pickle.dumps(writer))
        assert clone.path == writer.path
        assert clone.records_written == 1

    def test_validator_rejects_malformed_records(self):
        assert validate_interval_record([]) != []
        missing = {"cycle_start": 0, "cycle_end": 10}
        assert any(
            "missing or non-numeric" in p
            for p in validate_interval_record(missing)
        )
        empty = {"cycle_start": 5, "cycle_end": 5}
        assert any("empty window" in p for p in validate_interval_record(empty))
        good = {"cycle_start": 0, "cycle_end": 10}
        good.update({name: 0.0 for name in INTERVAL_METRICS})
        assert validate_interval_record(good) == []
        assert any(
            "unknown field" in p
            for p in validate_interval_record(dict(good, bogus=1))
        )


class TestEventStream:
    def test_in_memory_sink_sees_typed_events(self):
        hub = TelemetryHub()
        sink = InMemorySink()
        hub.add_event_sink(sink)
        cfg = make_config(num_sms=2)
        result = simulate(
            mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        assert hub.events_emitted == len(sink.events) > 0
        issues = sink.events_of_kind("issue")
        assert len(issues) == result.stats.instructions
        assert sink.events_of_kind("l1_access")
        kinds = {type(e).kind for e in sink.events}
        assert "sched_group" in kinds  # LAWS decisions made it through
        for event in sink.events[:50]:
            record = event.as_dict()
            assert record["kind"] == type(event).kind
            assert isinstance(record["cycle"], int)

    def test_event_registry_is_coherent(self):
        assert validate_event_registry() == []


class TestHeartbeat:
    def test_heartbeat_prints_one_line_per_window(self):
        stream = io.StringIO()
        hub = TelemetryHub(window=400)
        beat = HeartbeatSink(cycle_budget=2_000_000, stream=stream)
        hub.add_interval_sink(beat)
        cfg = make_config(num_sms=2)
        simulate(
            mixed_kernel(iterations=8), cfg, CONFIGS["apres"].build,
            telemetry=hub,
        )
        lines = stream.getvalue().splitlines()
        assert len(lines) == beat.lines_printed > 0
        assert all(line.startswith("[telemetry] cycle") for line in lines)
        assert "% of budget" in lines[-1]

    def test_heartbeat_pickles(self):
        beat = HeartbeatSink(cycle_budget=100, stream=io.StringIO())
        beat.on_interval({"cycle_start": 0, "cycle_end": 10, "ipc": 1.0,
                          "ipc_cum": 1.0})
        clone = pickle.loads(pickle.dumps(beat))
        assert clone.lines_printed == 1


def _regenerate_golden() -> None:
    hub, _result = golden_run()
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        json.dumps(hub.trace.build(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN} ({hub.trace.num_trace_events} trace events)")


if __name__ == "__main__":
    _regenerate_golden()
