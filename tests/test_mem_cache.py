"""L1 cache behaviour: hit/miss/merge/stall paths, miss classification,
hit-after-hit accounting and prefetch bookkeeping."""


from repro.config import CacheConfig
from repro.mem.cache import AccessOutcome, L1Cache
from repro.stats.counters import CacheStats


class Harness:
    """L1 wired to a scripted downstream that records forwarded misses."""

    def __init__(self, sets=2, ways=2, mshrs=4, merge=2, fill_delay=100):
        self.cfg = CacheConfig(
            size_bytes=sets * ways * 128,
            associativity=ways,
            num_mshrs=mshrs,
            mshr_merge_limit=merge,
        )
        self.stats = CacheStats()
        self.forwarded = []
        self.fill_delay = fill_delay
        self.l1 = L1Cache(self.cfg, self.stats, self._forward)

    def _forward(self, line, now, is_prefetch):
        self.forwarded.append((line, now, is_prefetch))
        return now + self.fill_delay

    def miss_then_fill(self, line, warp=0, now=0):
        outcome, _ = self.l1.access(line, warp, now)
        assert outcome is AccessOutcome.MISS
        self.l1.fill(line, now + self.fill_delay)


class TestDemandPath:
    def test_cold_miss_then_hit(self):
        h = Harness()
        outcome, ready = h.l1.access(0, 0, 10)
        assert outcome is AccessOutcome.MISS
        assert ready is None
        assert h.forwarded == [(0, 10, False)]
        h.l1.fill(0, 50)
        outcome, ready = h.l1.access(0, 0, 60)
        assert outcome is AccessOutcome.HIT
        assert ready == 60 + h.cfg.hit_latency

    def test_merge_into_inflight(self):
        h = Harness()
        done = []
        h.l1.access(0, 0, 0)
        outcome, _ = h.l1.access(0, 1, 5, on_fill=done.append)
        assert outcome is AccessOutcome.MERGED
        assert len(h.forwarded) == 1  # one downstream fetch
        h.l1.fill(0, 100)
        assert done == [100]

    def test_merge_limit_stalls(self):
        h = Harness(merge=1)
        h.l1.access(0, 0, 0)
        outcome, _ = h.l1.access(0, 1, 1)
        assert outcome is AccessOutcome.STALL
        assert h.stats.reservation_fails == 1

    def test_mshr_exhaustion_stalls(self):
        h = Harness(mshrs=2)
        h.l1.access(0 * 128, 0, 0)
        h.l1.access(1 * 128, 0, 0)
        outcome, _ = h.l1.access(2 * 128, 0, 0)
        assert outcome is AccessOutcome.STALL

    def test_stall_commits_nothing(self):
        h = Harness(mshrs=1)
        h.l1.access(0, 0, 0)
        before = (h.stats.accesses, h.stats.misses)
        h.l1.access(128, 0, 0)
        assert (h.stats.accesses, h.stats.misses) == before

    def test_fill_wakes_all_merged_requests(self):
        h = Harness()
        done = []
        h.l1.access(0, 0, 0, on_fill=lambda t: done.append(("a", t)))
        h.l1.access(0, 1, 1, on_fill=lambda t: done.append(("b", t)))
        h.l1.fill(0, 100)
        assert done == [("a", 100), ("b", 100)]


class TestMissClassification:
    def test_first_touch_is_cold(self):
        h = Harness()
        h.l1.access(0, 0, 0)
        assert h.stats.cold_misses == 1
        assert h.stats.capacity_conflict_misses == 0

    def test_evicted_line_remisses_as_capacity_conflict(self):
        h = Harness(sets=1, ways=1)
        h.miss_then_fill(0 * 128)
        h.miss_then_fill(1 * 128)  # evicts line 0
        outcome, _ = h.l1.access(0 * 128, 0, 500)
        assert outcome is AccessOutcome.MISS
        assert h.stats.capacity_conflict_misses == 1

    def test_hit_is_not_classified(self):
        h = Harness()
        h.miss_then_fill(0)
        h.l1.access(0, 0, 500)
        assert h.stats.cold_misses == 1
        assert h.stats.capacity_conflict_misses == 0


class TestHitAfterTracking:
    def test_hit_after_hit(self):
        h = Harness()
        h.miss_then_fill(0)
        h.l1.access(0, 0, 200)
        h.l1.access(0, 1, 210)
        assert h.stats.hit_after_miss == 1
        assert h.stats.hit_after_hit == 1

    def test_counts_stack_with_misses(self):
        h = Harness()
        h.miss_then_fill(0)
        for t in range(5):
            h.l1.access(0, 0, 200 + t)
        s = h.stats
        assert s.hits == 5
        assert s.hit_after_hit + s.hit_after_miss == 5
        assert s.accesses == s.hits + s.misses


class TestPrefetchPath:
    def test_prefetch_allocates_and_fills(self):
        h = Harness()
        assert h.l1.prefetch(0, 0)
        assert h.stats.prefetch_issued == 1
        assert h.forwarded == [(0, 0, True)]
        h.l1.fill(0, 100)
        assert h.stats.prefetch_fills == 1

    def test_prefetch_dropped_if_resident(self):
        h = Harness()
        h.miss_then_fill(0)
        assert not h.l1.prefetch(0, 300)
        assert h.stats.prefetch_dropped == 1

    def test_prefetch_dropped_if_inflight(self):
        h = Harness()
        h.l1.access(0, 0, 0)
        assert not h.l1.prefetch(0, 1)
        assert h.stats.prefetch_dropped == 1

    def test_prefetch_dropped_when_mshrs_full(self):
        h = Harness(mshrs=1)
        h.l1.access(0, 0, 0)
        assert not h.l1.prefetch(128, 1)
        assert h.stats.prefetch_dropped == 1

    def test_demand_merging_into_prefetch_counted(self):
        h = Harness()
        h.l1.prefetch(0, 0)
        outcome, _ = h.l1.access(0, 0, 10)
        assert outcome is AccessOutcome.MERGED
        assert h.stats.prefetch_demand_merged == 1

    def test_first_hit_on_prefetched_line_is_useful(self):
        h = Harness()
        h.l1.prefetch(0, 0)
        h.l1.fill(0, 100)
        h.l1.access(0, 0, 150)
        h.l1.access(0, 1, 160)
        assert h.stats.prefetch_useful == 1  # only the first touch counts

    def test_unused_prefetch_evicted_is_early(self):
        h = Harness(sets=1, ways=1)
        h.l1.prefetch(0 * 128, 0)
        h.l1.fill(0 * 128, 100)
        h.miss_then_fill(1 * 128, now=200)  # evicts the prefetched line
        assert h.stats.prefetch_early_evicted == 1

    def test_used_prefetch_eviction_is_not_early(self):
        h = Harness(sets=1, ways=1)
        h.l1.prefetch(0 * 128, 0)
        h.l1.fill(0 * 128, 100)
        h.l1.access(0 * 128, 0, 150)
        h.miss_then_fill(1 * 128, now=200)
        assert h.stats.prefetch_early_evicted == 0

    def test_merged_demand_makes_line_not_early(self):
        h = Harness(sets=1, ways=1)
        h.l1.prefetch(0 * 128, 0)
        h.l1.access(0 * 128, 0, 10)  # merges into the prefetch
        h.l1.fill(0 * 128, 100)
        h.miss_then_fill(1 * 128, now=200)
        assert h.stats.prefetch_early_evicted == 0


class TestStore:
    def test_store_invalidates(self):
        h = Harness()
        h.miss_then_fill(0)
        h.l1.store(0)
        outcome, _ = h.l1.access(0, 0, 500)
        assert outcome is AccessOutcome.MISS

    def test_store_counts_eviction(self):
        h = Harness()
        h.miss_then_fill(0)
        h.l1.store(0)
        assert h.stats.evictions == 1

    def test_store_to_absent_line_is_noop(self):
        h = Harness()
        h.l1.store(0)
        assert h.stats.evictions == 0


class TestEvictionListener:
    def test_listener_receives_filler_warp(self):
        h = Harness(sets=1, ways=1)
        seen = []
        h.l1.eviction_listener = lambda warp, line: seen.append((warp, line))
        h.miss_then_fill(0 * 128, warp=3)
        h.miss_then_fill(1 * 128, warp=4)
        assert seen == [(3, 0)]

    def test_prefetch_fills_not_reported(self):
        h = Harness(sets=1, ways=1)
        seen = []
        h.l1.eviction_listener = lambda warp, line: seen.append((warp, line))
        h.l1.prefetch(0, 0)
        h.l1.fill(0, 100)
        h.miss_then_fill(1 * 128, warp=4, now=200)
        assert seen == []  # filler_warp is -1 for pure prefetch fills
