"""Registry self-healing: every corruption class detected and repaired.

Each test manufactures one corruption class in a real registry (built by
a real sweep), asserts ``fsck`` names it, repairs with ``--repair``
semantics, and verifies the healed store passes a second pass clean.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from conftest import make_config
from repro.experiments import runner
from repro.experiments.sweep import run_sweep, sweep_points
from repro.registry.provenance import PROVENANCE_EPOCH_ENV
from repro.registry.store import RegistryStore
from repro.resilience.atomic import atomic_write
from repro.resilience.faults import corrupt_last_record
from repro.resilience.fsck import fsck, format_fsck

APPS = ["BFS", "KM"]
SCALE = 0.05


@pytest.fixture(autouse=True)
def fresh_run_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


@pytest.fixture
def pinned_epoch(monkeypatch):
    """Pin provenance timestamps so restoration is byte-lossless."""
    monkeypatch.setenv(PROVENANCE_EPOCH_ENV, "1700000000.0")


@pytest.fixture
def populated(tmp_path, pinned_epoch):
    """(store, sweep_path): a registry filled by a real two-point sweep."""
    store = RegistryStore(tmp_path / "reg")
    sweep_path = tmp_path / "sweep.jsonl"
    run_sweep(sweep_points(APPS, ["base"], (SCALE,)), str(sweep_path),
              gpu_config=make_config(), registry=store)
    return store, sweep_path


def jsonl_lines(store):
    return Path(store.jsonl_path).read_text().splitlines()


class TestDetection:
    def test_clean_store_is_clean(self, populated):
        store, _ = populated
        report = fsck(store)
        assert report.ok
        assert report.records == 2
        assert "clean" in format_fsck(report)

    def test_truncated_tail(self, populated):
        store, _ = populated
        path = Path(store.jsonl_path)
        path.write_bytes(path.read_bytes()[:-40])  # tear the last line
        report = fsck(store)
        assert report.counts()["torn-line"] == 1
        issue = next(i for i in report.issues if i.kind == "torn-line")
        assert "end of file" in issue.detail

    def test_garbage_line(self, populated):
        store, _ = populated
        lines = jsonl_lines(store)
        lines.insert(1, "not json at all {{{")
        atomic_write(store.jsonl_path, "".join(ln + "\n" for ln in lines))
        assert fsck(store).counts()["torn-line"] == 1

    def test_run_id_mismatch(self, populated):
        store, _ = populated
        lines = jsonl_lines(store)
        payload = json.loads(lines[0])
        payload["identity"]["scale"] = 99.0  # tamper: hash no longer matches
        lines[0] = json.dumps(payload, sort_keys=True, default=str)
        atomic_write(store.jsonl_path, "".join(ln + "\n" for ln in lines))
        store.rebuild_index()
        assert fsck(store).counts()["run-id-mismatch"] == 1

    def test_payload_hash_mismatch(self, populated):
        store, _ = populated
        corrupt_last_record(store)
        assert fsck(store).counts()["payload-hash-mismatch"] == 1

    def test_duplicate_line(self, populated):
        store, _ = populated
        lines = jsonl_lines(store)
        lines.append(lines[-1])  # replayed append
        atomic_write(store.jsonl_path, "".join(ln + "\n" for ln in lines))
        store.rebuild_index()
        assert fsck(store).counts()["duplicate"] == 1

    def test_missing_index_row(self, populated):
        store, _ = populated
        with sqlite3.connect(store.db_path) as conn:
            conn.execute(
                "DELETE FROM records WHERE seq = "
                "(SELECT MAX(seq) FROM records)")
        assert fsck(store).counts()["missing-index-row"] == 1

    def test_orphaned_index_row(self, populated):
        store, _ = populated
        lines = jsonl_lines(store)
        atomic_write(store.jsonl_path,
                     "".join(ln + "\n" for ln in lines[:-1]))
        assert fsck(store).counts()["orphaned-index-row"] == 1


class TestRepair:
    def test_torn_tail_quarantined_and_index_rebuilt(self, populated):
        store, _ = populated
        path = Path(store.jsonl_path)
        path.write_bytes(path.read_bytes()[:-40])
        report = fsck(store, repair=True)
        assert report.repaired
        assert report.quarantine_path is not None
        quarantined = Path(report.quarantine_path).read_text().splitlines()
        assert len(quarantined) == 1
        assert fsck(store).ok
        assert store.count() == 1  # index agrees with the healed mirror

    def test_corrupted_record_restored_losslessly_from_sweep(self, populated):
        store, sweep_path = populated
        pristine = Path(store.jsonl_path).read_bytes()
        corrupted_run_id = corrupt_last_record(store)
        report = fsck(store, repair=True, restore_from=str(sweep_path))
        issue = next(i for i in report.issues
                     if i.kind == "payload-hash-mismatch")
        assert issue.repaired and not issue.quarantined
        assert issue.run_id == corrupted_run_id
        # Under a pinned provenance epoch the regenerated record is
        # byte-identical to what the original ingest wrote.
        assert Path(store.jsonl_path).read_bytes() == pristine
        assert fsck(store).ok

    def test_corrupted_record_without_source_is_quarantined(self, populated):
        store, _ = populated
        corrupt_last_record(store)
        report = fsck(store, repair=True)  # no restore_from
        issue = next(i for i in report.issues
                     if i.kind == "payload-hash-mismatch")
        assert issue.quarantined and not issue.repaired
        assert fsck(store).ok

    def test_duplicates_removed(self, populated):
        store, _ = populated
        lines = jsonl_lines(store)
        atomic_write(store.jsonl_path,
                     "".join(ln + "\n" for ln in lines + [lines[-1]]))
        store.rebuild_index()
        report = fsck(store, repair=True)
        assert report.repaired
        assert jsonl_lines(store) == lines
        assert fsck(store).ok

    def test_index_drift_both_directions_healed(self, populated):
        store, _ = populated
        with sqlite3.connect(store.db_path) as conn:
            conn.execute(
                "DELETE FROM records WHERE seq = "
                "(SELECT MAX(seq) FROM records)")
            conn.execute(
                "INSERT INTO records (run_id, kind, name, created_at, json)"
                " VALUES ('deadbeef', 'sweep-point', 'ghost', 0, "
                "'{\"run_id\": \"deadbeef\"}')")
        report = fsck(store, repair=True)
        kinds = report.counts()
        assert kinds.get("missing-index-row", 0) >= 1
        assert kinds.get("orphaned-index-row", 0) >= 1
        assert fsck(store).ok
        assert store.count() == 2

    def test_check_mode_never_mutates(self, populated):
        store, _ = populated
        corrupt_last_record(store)
        before = Path(store.jsonl_path).read_bytes()
        report = fsck(store)  # no repair
        assert not report.repaired
        assert Path(store.jsonl_path).read_bytes() == before


class TestFsckCLI:
    def test_empty_registry_exits_zero(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "empty"))
        assert main(["fsck"]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_findings_exit_one_then_repair_exits_zero(
            self, populated, monkeypatch, capsys):
        from repro.cli import main

        store, sweep_path = populated
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(store.root))
        corrupt_last_record(store)
        assert main(["fsck"]) == 1
        assert main(["fsck", "--repair",
                     "--restore-from", str(sweep_path)]) == 0
        assert main(["fsck"]) == 0
        out = capsys.readouterr().out
        assert "payload-hash-mismatch" in out
        assert "[repaired]" in out

    def test_json_output(self, populated, monkeypatch, capsys):
        from repro.cli import main

        store, _ = populated
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(store.root))
        corrupt_last_record(store)
        assert main(["fsck", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["issues"] == {"payload-hash-mismatch": 1}
        assert payload["records"] == 1
