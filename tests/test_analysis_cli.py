"""`python -m repro lint` end to end: exit codes, formats, flags.

Exit-code contract (mirrors the CI lint job): 0 = clean, 1 = findings,
2 = the linter itself failed (unreadable path, unknown rule, rule crash).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "fixtures" / "simlint"
SRC_DIR = str(TESTS_DIR.parent / "src")


def run_cli(*args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
    )


class TestExitCodes:
    def test_clean_tree_exits_zero(self):
        proc = run_cli(str(FIXTURES / "good"))
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_findings_exit_one(self):
        proc = run_cli(str(FIXTURES / "bad"))
        assert proc.returncode == 1
        assert "SL001" in proc.stdout

    def test_internal_error_exits_two(self):
        proc = run_cli(str(FIXTURES / "no-such-dir"))
        assert proc.returncode == 2
        assert "no such file or directory" in proc.stderr

    def test_unknown_rule_exits_two(self):
        proc = run_cli(str(FIXTURES / "good"), "--rules", "SL999")
        assert proc.returncode == 2
        assert "unknown rule code" in proc.stderr

    def test_default_path_is_repo_package_and_clean(self):
        # No paths: lints the installed repro package, which must be clean.
        proc = run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestTextOutput:
    def test_findings_render_as_path_line_col_rule(self):
        proc = run_cli(str(FIXTURES / "bad" / "config_mutation.py"))
        assert proc.returncode == 1
        lines = [ln for ln in proc.stdout.splitlines() if ": SL005 " in ln]
        assert len(lines) == 3
        for line in lines:
            location = line.split(" ", 1)[0]
            path, lineno, col = location.rsplit(":", 3)[0:3]
            assert path.endswith("config_mutation.py")
            assert lineno.isdigit() and col.isdigit()

    def test_summary_line_present(self):
        proc = run_cli(str(FIXTURES / "bad"))
        assert "finding(s)" in proc.stdout


class TestJsonOutput:
    def test_schema(self):
        proc = run_cli(str(FIXTURES / "bad"), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["tool"] == "simlint"
        assert payload["schema_version"] == 1
        assert payload["summary"]["total"] == sum(
            payload["summary"]["by_rule"].values()
        )
        assert payload["summary"]["by_rule"] == {
            "SL001": 8, "SL002": 3, "SL003": 7, "SL004": 5, "SL005": 3,
            "SL006": 6, "SL007": 3, "SL008": 5, "SL009": 3, "SL010": 3,
            "SL011": 3,
        }
        assert payload["files_scanned"] >= 8
        assert payload["runtime_check"] is None
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "message"}
            assert finding["rule"] in payload["rules"] or finding["rule"] == "SL000"

    def test_clean_json(self):
        proc = run_cli(str(FIXTURES / "good"), "--format", "json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["summary"] == {"total": 0, "by_rule": {}}


class TestFlags:
    def test_rules_filter(self):
        proc = run_cli(str(FIXTURES / "bad"), "--rules", "SL003", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["summary"]["by_rule"] == {"SL003": 7}
        assert set(payload["rules"]) == {"SL003"}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005"):
            assert code in proc.stdout

    def test_select_is_an_alias_for_rules(self):
        proc = run_cli(str(FIXTURES / "bad"), "--select", "SL003", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["summary"]["by_rule"] == {"SL003": 7}

    def test_stats_line_on_stderr(self):
        proc = run_cli(str(FIXTURES / "good"), "--stats")
        assert proc.returncode == 0
        assert "simlint stats:" in proc.stderr
        for token in ("files=", "rules=", "findings=", "elapsed_s=",
                      "parse_cache_hits=", "parse_cache_misses="):
            assert token in proc.stderr
        assert "simlint stats:" not in proc.stdout

    def test_verify_against_runtime(self):
        src = str(Path(SRC_DIR) / "repro")
        proc = run_cli(src, "--verify-against-runtime", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        check = payload["runtime_check"]
        assert check["ran"] is True
        assert check["missing_at_runtime"] == []
        assert check["undeclared_at_runtime"] == []
        assert check["declared_counters"]


class TestGithubFormat:
    def test_findings_render_as_workflow_commands(self):
        proc = run_cli(
            str(FIXTURES / "bad" / "config_mutation.py"), "--format", "github"
        )
        assert proc.returncode == 1
        commands = [
            line for line in proc.stdout.splitlines() if line.startswith("::error ")
        ]
        assert len(commands) == 3
        for command in commands:
            assert "file=" in command and ",line=" in command and ",col=" in command
            assert "title=simlint SL005::" in command

    def test_parity_with_json(self):
        json_proc = run_cli(str(FIXTURES / "bad"), "--format", "json")
        gh_proc = run_cli(str(FIXTURES / "bad"), "--format", "github")
        findings = json.loads(json_proc.stdout)["findings"]
        commands = [
            line for line in gh_proc.stdout.splitlines()
            if line.startswith("::error ")
        ]
        assert len(commands) == len(findings)
        for finding, command in zip(findings, commands):
            assert f"file={finding['path']},line={finding['line']}," in command
            assert f"title=simlint {finding['rule']}::" in command

    def test_clean_tree_emits_no_commands(self):
        proc = run_cli(str(FIXTURES / "good"), "--format", "github")
        assert proc.returncode == 0
        assert "::error" not in proc.stdout
        assert "clean" in proc.stdout


class TestIsolationReport:
    def test_two_runs_are_byte_identical(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for target in (first, second):
            proc = run_cli(
                str(FIXTURES / "good" / "sm" / "isolation.py"),
                "--isolation-report", str(target),
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
        assert first.read_bytes() == second.read_bytes()

    def test_report_content(self, tmp_path):
        target = tmp_path / "isolation.json"
        proc = run_cli(
            str(FIXTURES / "good" / "sm" / "isolation.py"),
            "--isolation-report", str(target),
        )
        assert proc.returncode == 0
        report = json.loads(target.read_text())
        assert report["tool"] == "simlint-isolation"
        assert report["schema_version"] == 1
        assert report["roots"] == ["IsoCore.cycle"]
        assert report["summary"]["unwaived_violations"] == 0
