"""Figure 2: L1 miss breakdown, 32 KB baseline (B) vs 32 MB L1 (C)."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table
from repro.workloads.suite import SUITE, memory_intensive_workloads


def test_fig2_miss_breakdown(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure2(scale=scale))

    rows = []
    for app, variants in data.items():
        for label in ("B", "C"):
            r = variants[label]
            rows.append([
                app, label, f"{r.cold_ratio:.2f}", f"{r.capacity_conflict_ratio:.2f}",
                f"{r.miss_rate:.2f}", f"{r.speedup:.2f}",
            ])
    text = format_table(
        ["App", "L1", "Cold", "Cap+Conf", "MissRate", "Speedup"],
        rows,
        title="Figure 2 — miss breakdown: 32KB baseline (B) vs 32MB (C)",
    )
    archive(results_dir, "figure2", text, data=data, scale=scale)

    assert set(data) == set(SUITE)
    mem_apps = [w.abbr for w in memory_intensive_workloads()]
    # The large cache eliminates (nearly) all capacity+conflict misses...
    for app in data:
        assert data[app]["C"].capacity_conflict_ratio <= max(
            0.02, data[app]["B"].capacity_conflict_ratio
        )
    # ... and thrashing apps convert that into speedup (Section III-A).
    assert data["KM"]["B"].capacity_conflict_ratio > 0.5
    assert data["KM"]["C"].speedup > 1.2
    mean_speedup = sum(data[a]["C"].speedup for a in mem_apps) / len(mem_apps)
    assert mean_speedup > 1.0
