"""Figure 4: early-eviction ratio of STR under four schedulers."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig4_early_eviction_str(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure4(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "MEAN"]
    rows = [
        [config] + [f"{data[config][a]:.3f}" for a in apps] + [f"{data[config]['MEAN']:.3f}"]
        for config in figures.FIG4_CONFIGS
    ]
    text = format_table(
        ["Config"] + apps + ["MEAN"],
        rows,
        title="Figure 4 — early eviction ratio of STR prefetching",
    )
    archive(results_dir, "figure4", text, data=data, scale=scale)

    assert set(data) == set(figures.FIG4_CONFIGS)
    for config, per_app in data.items():
        for app, ratio in per_app.items():
            assert 0.0 <= ratio <= 1.0, (config, app)
        # Prefetched lines do get evicted early under every scheduler —
        # the headroom APRES goes after (Section III-C).
        assert per_app["MEAN"] > 0.0
