"""Figure 12: early-eviction ratio, best existing combination vs APRES."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig12_early_eviction(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure12(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "MEAN"]
    rows = [
        [config] + [f"{data[config][a]:.3f}" for a in apps] + [f"{data[config]['MEAN']:.3f}"]
        for config in data
    ]
    text = format_table(
        ["Config"] + apps + ["MEAN"],
        rows,
        title="Figure 12 — early eviction ratio: CCWS+STR vs APRES",
    )
    archive(results_dir, "figure12", text, data=data, scale=scale)

    assert set(data) == {"ccws+str", "apres"}
    for per_app in data.values():
        for ratio in per_app.values():
            assert 0.0 <= ratio <= 1.0
