"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper. Simulations
are memoised process-wide, so figures sharing configurations (10-15) reuse
each other's runs. ``REPRO_BENCH_SCALE`` shrinks or grows the workloads
(default 0.5 of the full trip counts); results are printed and archived
under ``bench_results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Loop-trip-count multiplier for all benchmark simulations.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


def archive(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a reproduced table and save it next to the repo."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Time one figure regeneration (memoisation makes retimes cheap)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
