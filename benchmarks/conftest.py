"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper. Simulations
are memoised process-wide, so figures sharing configurations (10-15) reuse
each other's runs. ``REPRO_BENCH_SCALE`` shrinks or grows the workloads
(default 0.5 of the full trip counts); results are printed and archived
under ``bench_results/`` three ways: the human-readable ``<name>.txt``,
the machine-readable ``<name>.json`` payload, and the compact headline
file ``BENCH_<name>.json`` whose git history is the result trajectory.
Each payload is also ingested into the run registry
(``bench_results/registry``, or ``REPRO_REGISTRY_DIR``).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional, Sequence

import pytest

#: Loop-trip-count multiplier for all benchmark simulations.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


def archive(results_dir: pathlib.Path, name: str, text: str,
            data: object = None, scale: float = SCALE,
            apps: Optional[Sequence[str]] = None) -> None:
    """Print a reproduced table, save it, and (with ``data``) register it.

    ``data`` is the producer's raw payload. When given it is persisted
    machine-readably as ``<name>.json``, summarised into the committed
    ``BENCH_<name>.json`` headline-metric file, and ingested into the run
    registry as a figure record (full provenance: commit, host, scale).
    """
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if data is None:
        return
    from repro.experiments.export import to_jsonable
    from repro.registry.records import figure_record, headline_metrics
    from repro.registry.store import RegistryStore

    payload = to_jsonable(data)
    (results_dir / f"{name}.json").write_text(json.dumps(
        {"name": name, "scale": scale, "data": payload},
        indent=2, sort_keys=True, default=str) + "\n")
    (results_dir / f"BENCH_{name}.json").write_text(json.dumps(
        headline_metrics(payload), indent=2, sort_keys=True) + "\n")
    store = (RegistryStore() if os.environ.get("REPRO_REGISTRY_DIR")
             else RegistryStore(results_dir / "registry"))
    store.put(figure_record(name, data, scale, apps))


def run_once(benchmark, fn):
    """Time one figure regeneration (memoisation makes retimes cheap)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
