"""Table II: APRES hardware cost (724 bytes per SM)."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_table2_hardware_cost(benchmark, results_dir):
    cost = run_once(benchmark, figures.table2)

    text = format_table(
        ["Module", "Structure", "Bytes"],
        [
            ["LAWS", "LLT (4B x 48)", cost.llt_bytes],
            ["LAWS", "WGT (48b x 3)", cost.wgt_bytes],
            ["SAP", "DRQ (8B x 32)", cost.drq_bytes],
            ["SAP", "WQ (1B x 48)", cost.wq_bytes],
            ["SAP", "PT (21B x 10)", cost.pt_bytes],
            ["Total", "", cost.total_bytes],
        ],
        title="Table II — hardware cost of APRES",
    )
    archive(results_dir, "table2", text, data=cost)

    assert cost.laws_bytes == 210
    assert cost.sap_bytes == 514
    assert cost.total_bytes == 724  # the paper's exact figure
