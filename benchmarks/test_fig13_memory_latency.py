"""Figure 13: average memory latency, normalised to baseline."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig13_memory_latency(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure13(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "GMEAN"]
    rows = [
        [config] + [f"{data[config][a]:.2f}" for a in apps] + [f"{data[config]['GMEAN']:.2f}"]
        for config in data
    ]
    text = format_table(
        ["Config"] + apps + ["GMEAN"],
        rows,
        title="Figure 13 — average memory latency (normalised to baseline)",
    )
    archive(results_dir, "figure13", text, data=data, scale=scale)

    assert set(data) == {"ccws+str", "apres"}
    for per_app in data.values():
        for v in per_app.values():
            assert v > 0
    # Where throttling creates hits, average latency collapses (KM).
    assert data["ccws+str"]["KM"] < 0.8
