"""Figure 14: memory traffic, normalised to baseline."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig14_traffic(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure14(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "GMEAN"]
    rows = [
        [config] + [f"{data[config][a]:.2f}" for a in apps] + [f"{data[config]['GMEAN']:.2f}"]
        for config in data
    ]
    text = format_table(
        ["Config"] + apps + ["GMEAN"],
        rows,
        title="Figure 14 — data traffic (normalised to baseline)",
    )
    archive(results_dir, "figure14", text, data=data, scale=scale)

    # Both adaptive prefetchers keep traffic near baseline (Section V-E):
    # confirmation gating avoids wild overfetch.
    for config, per_app in data.items():
        assert 0.8 < per_app["GMEAN"] < 1.25, config
        for app, v in per_app.items():
            assert v < 1.5, (config, app)
