"""Figure 10: headline IPC comparison — CCWS, LAWS, CCWS+STR, LAWS+STR, APRES."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig10_performance(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure10(scale=scale))

    apps = [a for a in next(iter(data.values())) if not a.startswith("GMEAN")]
    rows = [
        [config]
        + [f"{data[config][a]:.2f}" for a in apps]
        + [f"{data[config]['GMEAN']:.2f}", f"{data[config]['GMEAN-MEM']:.2f}"]
        for config in figures.FIG10_CONFIGS
    ]
    text = format_table(
        ["Config"] + apps + ["GMEAN", "GMEAN-MEM"],
        rows,
        title="Figure 10 — speedup over baseline (LRR, no prefetching)",
    )
    archive(results_dir, "figure10", text, data=data, scale=scale)

    assert set(data) == set(figures.FIG10_CONFIGS)
    # Core shape claims of Section V-B on this substrate:
    # (1) CCWS's warp throttling dominates on KM's pathological thrash.
    assert data["ccws"]["KM"] > 1.2
    assert data["ccws"]["KM"] > data["apres"]["KM"] - 0.05
    # (2) APRES's biggest wins come from strided memory-intensive apps.
    assert data["apres"]["LUD"] > 1.1
    # (3) APRES does not lose to plain LAWS anywhere significant: SAP adds.
    assert data["apres"]["GMEAN"] >= data["laws"]["GMEAN"] - 0.02
    # (4) Nothing catastrophically regresses under APRES.
    for app in apps:
        assert data["apres"][app] > 0.85, app
