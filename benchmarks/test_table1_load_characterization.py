"""Table I: per-load characterisation of the memory-intensive applications."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_table1_load_characterization(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.table1(scale=scale))

    rows = []
    for app, load_rows in data.items():
        for r in load_rows:
            stride = "-" if r.top_stride is None else r.top_stride
            rows.append([
                app, f"0x{r.pc:X}", f"{r.pct_load:.1%}", f"{r.lines_per_ref:.2f}",
                f"{r.miss_rate:.2f}", stride, f"{r.pct_stride:.1%}",
            ])
    text = format_table(
        ["App", "PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
        rows,
        title="Table I — characteristics of frequently executed loads",
    )
    archive(results_dir, "table1", text, data=data, scale=scale)

    assert set(data) == {"BFS", "MUM", "NW", "SPMV", "KM",
                         "LUD", "SRAD", "PA", "HISTO", "BP"}
    km = {r.pc: r for r in data["KM"]}[0xE8]
    # Section III-B's KM signature: near-total miss rate despite tiny #L/#R,
    # with the dominant inter-warp stride of 4352.
    assert km.lines_per_ref < 0.15
    assert km.miss_rate > 0.8
    assert km.top_stride == 4352
    srad = {r.pc: r for r in data["SRAD"]}
    assert srad[0x250].top_stride == 16384
    assert srad[0x250].lines_per_ref > 0.8
    # The substep=False load re-reads its line: #L/#R near 0.5.
    assert 0.4 < srad[0x350].lines_per_ref < 0.6
