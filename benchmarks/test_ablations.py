"""Ablation benches over APRES's design choices (DESIGN.md's knobs)."""

from conftest import archive, run_once
from repro.experiments import ablations
from repro.experiments.report import format_table


def _grid_text(data, title, key_header):
    apps = list(next(iter(data.values())))
    rows = [[k] + [f"{data[k][a]:.3f}" for a in apps] for k in data]
    return format_table([key_header] + apps, rows, title=title)


def test_ablation_sap_components(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.sap_components(scale=scale))
    apps = list(data)
    rows = [
        [variant] + [f"{data[a][variant]:.3f}" for a in apps]
        for variant in ("laws", "laws+group", "laws+group+self")
    ]
    text = format_table(["Variant"] + apps, rows,
                        title="Ablation — APRES component stack (speedup vs baseline)")
    archive(results_dir, "ablation_components", text, data=data, scale=scale)
    # The full stack must dominate LAWS alone on the strided apps.
    assert data["LUD"]["laws+group+self"] >= data["LUD"]["laws"]


def test_ablation_pt_entries(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.pt_entry_sweep(scale=scale))
    text = _grid_text(data, "Ablation — SAP Prefetch Table entries", "PT")
    archive(results_dir, "ablation_pt_entries", text, data=data, scale=scale)
    # The paper's 10 entries should be on the saturated part of the curve.
    for app in data[10]:
        assert data[10][app] >= data[1][app] - 0.05, app


def test_ablation_wgt_entries(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.wgt_entry_sweep(scale=scale))
    text = _grid_text(data, "Ablation — Warp Group Table entries", "WGT")
    archive(results_dir, "ablation_wgt_entries", text, data=data, scale=scale)
    # 3 entries cover all in-flight loads: more entries change nothing.
    for app in data[3]:
        assert abs(data[3][app] - data[8][app]) < 0.05, app


def test_ablation_self_degree(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.self_degree_sweep(scale=scale))
    text = _grid_text(data, "Ablation — SAP self-prefetch degree", "Degree")
    archive(results_dir, "ablation_self_degree", text, data=data, scale=scale)
    assert data[2]["LUD"] > data[0]["LUD"]  # self-prefetch carries LUD


def test_ablation_l1_size(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.l1_size_sweep(scale=scale))
    text = _grid_text(data, "Ablation — baseline IPC vs L1 capacity (KB)", "L1 KB")
    archive(results_dir, "ablation_l1_size", text, data=data, scale=scale)
    # KM thrashes at 32 KB and is cured by capacity (Figure 2's premise).
    assert data[128]["KM"] > data[32]["KM"]


def test_ablation_bandwidth(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: ablations.bandwidth_sweep(scale=scale))
    text = _grid_text(data, "Ablation — baseline IPC vs DRAM service cycles", "DRAM cy")
    archive(results_dir, "ablation_bandwidth", text, data=data, scale=scale)
    # Less bandwidth can only hurt.
    for app in data[2]:
        assert data[2][app] >= data[8][app] - 0.02, app
