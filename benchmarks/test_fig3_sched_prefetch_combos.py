"""Figure 3: speedup of scheduler x prefetcher combinations over baseline."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig3_sched_prefetch_combos(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure3(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "GMEAN"]
    rows = [
        [config] + [f"{data[config][a]:.2f}" for a in apps] + [f"{data[config]['GMEAN']:.2f}"]
        for config in figures.FIG3_CONFIGS
    ]
    text = format_table(
        ["Config"] + apps + ["GMEAN"],
        rows,
        title="Figure 3 — scheduler x prefetcher speedups (normalised to baseline)",
    )
    archive(results_dir, "figure3", text, data=data, scale=scale)

    assert set(data) == set(figures.FIG3_CONFIGS)
    for config, per_app in data.items():
        for app, value in per_app.items():
            assert value > 0, (config, app)
    # Section III-C: STR covers arbitrarily large strides, SLD only 4-line
    # macro-blocks, so CCWS+STR should not lose to CCWS+SLD overall.
    assert data["ccws+str"]["GMEAN"] >= data["ccws+sld"]["GMEAN"] - 0.02
    # The combination the paper calls best must help where thrash dominates.
    assert data["ccws+str"]["KM"] > 1.2
