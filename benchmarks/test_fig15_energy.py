"""Figure 15: dynamic energy, normalised to baseline."""

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig15_energy(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure15(scale=scale))

    apps = [a for a in next(iter(data.values())) if a != "GMEAN"]
    rows = [
        [config] + [f"{data[config][a]:.2f}" for a in apps] + [f"{data[config]['GMEAN']:.2f}"]
        for config in data
    ]
    text = format_table(
        ["Config"] + apps + ["GMEAN"],
        rows,
        title="Figure 15 — dynamic energy (normalised to baseline)",
    )
    archive(results_dir, "figure15", text, data=data, scale=scale)

    per_app = data["apres"]
    # Energy tracks runtime and DRAM traffic; APRES must not blow it up —
    # the paper bounds even its worst case (ST's wasted prefetches) at +10%.
    assert per_app["GMEAN"] < 1.1
    for app, v in per_app.items():
        assert v < 1.25, app
