"""Figure 11: L1 hit/miss breakdown for B, C, L, S, A configurations."""

import pytest

from conftest import archive, run_once
from repro.experiments import figures
from repro.experiments.report import format_table


def test_fig11_cache_breakdown(benchmark, results_dir, scale):
    data = run_once(benchmark, lambda: figures.figure11(scale=scale))

    rows = []
    for app, per_config in data.items():
        for label in figures.FIG11_CONFIGS:
            r = per_config[label]
            rows.append([
                app, label, f"{r.hit_after_hit:.2f}", f"{r.hit_after_miss:.2f}",
                f"{r.cold:.2f}", f"{r.capacity_conflict:.2f}",
            ])
    text = format_table(
        ["App", "Cfg", "Hit-after-hit", "Hit-after-miss", "Cold", "Cap+Conf"],
        rows,
        title="Figure 11 — cache breakdown (B=base C=ccws L=laws S=ccws+str A=apres)",
    )
    archive(results_dir, "figure11", text, data=data, scale=scale)

    for app, per_config in data.items():
        for label, r in per_config.items():
            assert r.hit_ratio + r.miss_ratio == pytest.approx(1.0, abs=1e-6), (app, label)
    # CCWS's throttling converts KM's capacity misses into hits (Section V-C).
    km = data["KM"]
    assert km["C"].capacity_conflict < km["B"].capacity_conflict
    assert km["C"].hit_ratio > km["B"].hit_ratio
