#!/usr/bin/env python3
"""Export reproduction results as JSON for external plotting pipelines.

Regenerates a subset of the paper's figures at small scale and writes one
JSON file per experiment under ``exported_results/``.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.export import export_figure

EXPERIMENTS = ("table2", "figure10", "figure12", "figure13")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    apps = ["KM", "LUD", "PA"]
    import pathlib

    out = pathlib.Path("exported_results")
    out.mkdir(exist_ok=True)
    for name in EXPERIMENTS:
        path = out / f"{name}.json"
        payload = export_figure(name, path, apps=None if name == "table2" else apps,
                                scale=scale)
        print(f"wrote {path} ({len(json.dumps(payload))} bytes)")
    print("\nSample (figure10):")
    print(json.dumps(json.loads((out / "figure10.json").read_text())["data"],
                     indent=2)[:400])


if __name__ == "__main__":
    main()
