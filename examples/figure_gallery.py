#!/usr/bin/env python3
"""Render the reproduction's key figures as standalone SVG charts.

Produces ``figure_gallery/figure{10,12,13,14,15}.svg`` — dependency-free
grouped bar charts of the same data the benchmark harness tabulates.

Usage::

    python examples/figure_gallery.py [SCALE]
"""

from __future__ import annotations

import sys

from repro.experiments.svg import render_figure

FIGURES = ("figure10", "figure12", "figure13", "figure14", "figure15")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    apps = ["BFS", "KM", "LUD", "SRAD", "PA", "CS", "SP"]
    for name in FIGURES:
        path = render_figure(name, "figure_gallery", apps=apps, scale=scale)
        print(f"rendered {path}")
    print("\nOpen the SVGs in any browser; hover a bar for exact values.")


if __name__ == "__main__":
    main()
