#!/usr/bin/env python3
"""Reproduce Table I's per-load characterisation for any workload.

Attaches a :class:`~repro.characterize.LoadProfiler` to a baseline
simulation and prints, for each static load: its share of memory
references (%Load), unique-lines-per-reference (#L/#R — the miss rate an
infinite cache would achieve), the actual L1 miss rate, and the dominant
inter-warp stride. The gap between #L/#R and the miss rate is the paper's
measure of cache thrashing (Section III-B).

Usage::

    python examples/characterize_loads.py [APP ...]
"""

from __future__ import annotations

import sys

from repro import experiment_gpu_config, workload, build_kernel
from repro.characterize import LoadProfiler
from repro.experiments.configs import CONFIGS
from repro.experiments.report import format_table
from repro.sm.simulator import simulate


def characterize(app: str, scale: float = 0.5) -> None:
    profiler = LoadProfiler()
    kernel = build_kernel(workload(app), scale)
    simulate(kernel, experiment_gpu_config(), CONFIGS["base"].build,
             load_observers=[profiler.observe])

    rows = []
    for r in profiler.rows():
        stride = "-" if r.top_stride is None else r.top_stride
        rows.append([
            f"0x{r.pc:X}", f"{r.pct_load:.1%}", f"{r.lines_per_ref:.2f}",
            f"{r.miss_rate:.2f}", stride, f"{r.pct_stride:.1%}",
        ])
    print(format_table(
        ["PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
        rows,
        title=f"\n{app}: per-load characterisation (Table I methodology)",
    ))


def main() -> None:
    apps = sys.argv[1:] or ["KM", "SRAD", "BFS"]
    for app in apps:
        characterize(app)


if __name__ == "__main__":
    main()
