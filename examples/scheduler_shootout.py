#!/usr/bin/env python3
"""Compare every scheduler/prefetcher combination on chosen workloads.

The Figure 3 + Figure 10 experiment in miniature: run each named
configuration and print speedups over the LRR baseline, plus the cache
behaviour that explains them.

Usage::

    python examples/scheduler_shootout.py [APP ...]
"""

from __future__ import annotations

import sys

from repro import run
from repro.experiments.report import format_table

CONFIGS = [
    "base", "gto", "twolevel", "pa", "mascar",
    "ccws", "laws", "ccws+str", "laws+str", "apres",
]


def shootout(app: str, scale: float = 0.5) -> None:
    base = run(app, "base", scale=scale)
    rows = []
    for config in CONFIGS:
        r = run(app, config, scale=scale)
        l1 = r.sim.stats.l1
        rows.append([
            config,
            f"{base.cycles / r.cycles:.2f}",
            f"{l1.miss_rate:.2f}",
            f"{l1.hit_after_hit_ratio:.2f}",
            l1.prefetch_issued,
            f"{l1.early_eviction_ratio:.2f}",
        ])
    print(format_table(
        ["Config", "Speedup", "MissRate", "Hit-after-hit", "Prefetches", "EarlyEvict"],
        rows,
        title=f"\n{app}: scheduler/prefetcher shootout",
    ))


def main() -> None:
    apps = sys.argv[1:] or ["KM", "LUD", "PA"]
    for app in apps:
        shootout(app)


if __name__ == "__main__":
    main()
