#!/usr/bin/env python3
"""Build a custom workload from scratch and see how APRES treats it.

Demonstrates the workload-authoring API: define static loads with address
generators (the paper's two load classes — high-locality and strided),
lower the spec to a kernel, and simulate it under several configurations.
The example kernel mixes a broadcast lookup table (every warp reads the
same lines), a large-stride streaming array, and a store.
"""

from __future__ import annotations

from repro import run  # noqa: F401  (re-exported convenience API)
from repro.config import GPUConfig
from repro.experiments.configs import CONFIGS
from repro.experiments.report import format_table
from repro.isa.address import BroadcastAddress, StridedAddress
from repro.sm.simulator import simulate
from repro.workloads.spec import Category, LoadSpec, StoreSpec, WorkloadSpec
from repro.workloads.synthetic import build_kernel

KB, MB, GB = 1024, 1 << 20, 1 << 30


def my_workload() -> WorkloadSpec:
    return WorkloadSpec(
        name="Custom table-lookup stream",
        abbr="CUSTOM",
        suite="example",
        category=Category.CACHE_SENSITIVE,
        loads=(
            # High-locality class: a 4 KB coefficient table shared by all
            # warps. The first warp misses; everyone else should hit — if
            # the scheduler keeps the lines alive.
            LoadSpec("table", 0x100,
                     BroadcastAddress(1 * GB, region_bytes=4 * KB), weight=2),
            # Strided class: each warp streams its own rows, 16 KB apart —
            # never reused, but perfectly predictable for SAP.
            LoadSpec("rows", 0x200,
                     StridedAddress(2 * GB, warp_stride=16 * KB, iter_stride=128,
                                    footprint_bytes=64 * MB), weight=3),
        ),
        iterations=40,
        alu_per_load=2,
        store=StoreSpec("out", 0x300,
                        StridedAddress(3 * GB, warp_stride=128, iter_stride=12288)),
        description="shared lookup table + streamed row data",
    )


def main() -> None:
    spec = my_workload()
    kernel = build_kernel(spec)
    config = GPUConfig().scaled(2)
    print(f"Custom kernel: {len(kernel.body)} instructions/iteration, "
          f"{kernel.iterations} iterations, {config.max_warps_per_sm} warps/SM")

    results = {}
    for name in ("base", "ccws", "laws", "apres"):
        results[name] = simulate(kernel, config, CONFIGS[name].build)

    base_cycles = results["base"].cycles
    rows = []
    for name, r in results.items():
        s = r.stats
        rows.append([
            name, s.cycles, f"{base_cycles / s.cycles:.2f}",
            f"{s.l1.miss_rate:.2f}", f"{s.memory.avg_demand_latency:.0f}",
            s.l1.prefetch_issued,
        ])
    print(format_table(
        ["Config", "Cycles", "Speedup", "L1 miss", "Mem latency", "Prefetches"],
        rows,
        title="\nCustom workload under four configurations",
    ))


if __name__ == "__main__":
    main()
