#!/usr/bin/env python3
"""Quickstart: simulate one workload under the baseline GPU and APRES.

Runs the KMeans-style workload (the paper's poster child for cache
thrashing) plus a strided workload where APRES's prefetching shines, and
prints the headline metrics the paper's evaluation is built on.

Usage::

    python examples/quickstart.py [APP] [SCALE]

``APP`` is a Table IV abbreviation (default LUD), ``SCALE`` multiplies the
loop trip counts (default 0.5).
"""

from __future__ import annotations

import sys

from repro import run


def describe(label: str, result) -> None:
    s = result.sim.stats
    print(f"  {label:10s} cycles={s.cycles:8d}  IPC={s.ipc:5.2f}  "
          f"L1 miss={s.l1.miss_rate:5.1%}  "
          f"avg mem latency={s.memory.avg_demand_latency:6.1f} cy  "
          f"energy={result.energy.total / 1e6:7.2f} uJ")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "LUD"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"Simulating {app} (scale={scale}) on the Table III machine...")
    base = run(app, "base", scale=scale)
    apres = run(app, "apres", scale=scale)

    print("\nResults:")
    describe("baseline", base)
    describe("APRES", apres)

    speedup = base.cycles / apres.cycles
    l1 = apres.sim.stats.l1
    print(f"\nAPRES speedup over baseline: {speedup:.2f}x")
    print(f"Prefetches issued: {l1.prefetch_issued}  "
          f"useful: {l1.prefetch_useful}  "
          f"demand-merged: {l1.prefetch_demand_merged}  "
          f"early-evicted: {l1.prefetch_early_evicted}")


if __name__ == "__main__":
    main()
