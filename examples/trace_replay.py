#!/usr/bin/env python3
"""Record a memory trace and replay it against different cache capacities.

Demonstrates the trace subsystem: run one execution-driven simulation with
a recorder attached, persist the trace, then sweep L1 capacities over the
frozen access stream — the quickest way to ask "how much cache would this
working set actually need?" (the question behind the paper's Figure 2).
"""

from __future__ import annotations

import sys
import tempfile
import pathlib

from repro import experiment_gpu_config, workload, build_kernel
from repro.experiments.configs import CONFIGS
from repro.experiments.report import format_table
from repro.sm.simulator import simulate
from repro.trace import TraceRecorder, capacity_sweep, load_trace, save_trace

KB = 1024


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "KM"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    print(f"Recording {app} (scale={scale}) under the baseline scheduler...")
    recorder = TraceRecorder()
    kernel = build_kernel(workload(app), scale)
    result = simulate(kernel, experiment_gpu_config(), CONFIGS["base"].build,
                      load_observers=[recorder.observe])
    print(f"  {len(recorder)} loads recorded; "
          f"execution-driven miss rate {result.stats.l1.miss_rate:.1%}")

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / f"{app}.trace.gz"
        save_trace(recorder.events, path)
        print(f"  trace serialised to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")
        events = load_trace(path)

    sweep = capacity_sweep(events, [16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB])
    rows = [
        [f"{size // KB} KB", r.accesses, f"{r.miss_rate:.1%}",
         f"{r.cold_misses / r.accesses:.1%}",
         f"{r.capacity_conflict_misses / r.accesses:.1%}"]
        for size, r in sweep.items()
    ]
    print(format_table(
        ["L1 size", "Accesses", "Miss rate", "Cold", "Cap+Conf"],
        rows, title=f"\n{app}: trace-driven capacity sweep (SM 0)",
    ))


if __name__ == "__main__":
    main()
